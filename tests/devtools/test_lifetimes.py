"""True/false-positive tests for the resource-lifetime rules (REP603/604).

The firing tests seed the leak classes the out-of-core substrate is
exposed to (an unlinked SharedMemory segment, a release skippable by an
early return, a close that only runs on the no-exception path, a memmap
view returned from inside its owner's ``with`` block).  The quiet tests
pin the legitimate shapes the real code uses: try/finally protection,
``with`` management, escape-by-return/store/argument (ownership
transfer), and ``np.array`` copies crossing the owner boundary.
"""

from __future__ import annotations

import textwrap

from repro.devtools.callgraph import build_program
from repro.devtools.lifetimes import function_resources
from repro.devtools.lint import LIFETIME_RULES


def _program(sources: dict[str, str]):
    items = [
        (modname, f"src/{modname.replace('.', '/')}.py",
         textwrap.dedent(src))
        for modname, src in sorted(sources.items())
    ]
    return build_program(items)


def rule_ids(sources: dict[str, str]) -> list[str]:
    found: list[str] = []
    for rule_cls in LIFETIME_RULES:
        for violation in rule_cls().check_program(_program(sources)):
            found.append(violation.rule_id)
    return found


# -- the site model -----------------------------------------------------------


def test_function_resources_marks_releases_and_escapes():
    program = _program(
        {
            "m": """
                __all__ = ["a", "b"]

                def a(path):
                    handle = open(path)
                    handle.close()

                def b(path):
                    handle = open(path)
                    return handle
            """
        }
    )
    (site_a,) = function_resources(program.functions["m:a"])
    assert site_a.kind == "open"
    assert site_a.release_stmts and not site_a.escaped
    (site_b,) = function_resources(program.functions["m:b"])
    assert site_b.escaped and not site_b.release_stmts


# -- REP603: missing / skippable / unprotected release ------------------------


def test_rep603_fires_on_never_released_shared_memory():
    assert "REP603" in rule_ids(
        {
            "m": """
                from multiprocessing.shared_memory import SharedMemory
                __all__ = ["leak"]

                def leak(nbytes):
                    shm = SharedMemory(create=True, size=nbytes)
                    shm.buf[0] = 1
            """
        }
    )


def test_rep603_quiet_on_shared_memory_attach():
    # Attaching to an existing segment carries no unlink obligation.
    assert "REP603" not in rule_ids(
        {
            "m": """
                from multiprocessing.shared_memory import SharedMemory
                __all__ = ["read"]

                def read(name):
                    shm = SharedMemory(name=name)
                    return bytes(shm.buf[:8])
            """
        }
    )


def test_rep603_fires_on_release_skipped_by_early_return():
    assert "REP603" in rule_ids(
        {
            "m": """
                __all__ = ["skippy"]

                def skippy(path, flag):
                    handle = open(path)
                    if flag:
                        return None
                    handle.close()
                    return True
            """
        }
    )


def test_rep603_fires_on_unprotected_risky_gap():
    assert "REP603" in rule_ids(
        {
            "m": """
                __all__ = ["gap"]

                def gap(path, other, process):
                    handle = open(path)
                    process(other)
                    handle.close()
            """
        }
    )


def test_rep603_quiet_on_try_finally_protection():
    assert "REP603" not in rule_ids(
        {
            "m": """
                from multiprocessing.shared_memory import SharedMemory
                __all__ = ["safe"]

                def safe(nbytes, work):
                    shm = SharedMemory(create=True, size=nbytes)
                    try:
                        work(shm.buf)
                    finally:
                        shm.unlink()
            """
        }
    )


def test_rep603_quiet_on_ownership_transfer():
    # Returning, storing, or passing the resource transfers the
    # obligation; the function no longer provably owns it.
    assert "REP603" not in rule_ids(
        {
            "m": """
                __all__ = ["give", "stash", "hand_off"]

                def give(path):
                    handle = open(path)
                    return handle

                class Holder:
                    def stash(self, path):
                        handle = open(path)
                        self._handle = handle

                def hand_off(path, consumer):
                    handle = open(path)
                    consumer(handle)
            """
        }
    )


def test_rep603_quiet_on_calls_on_the_resource_itself():
    # `handle.read()` between open and close is the resource's own
    # surface, not a risky third-party gap.
    assert "REP603" not in rule_ids(
        {
            "m": """
                __all__ = ["fine"]

                def fine(path):
                    handle = open(path)
                    data = handle.read()
                    handle.close()
                    return data
            """
        }
    )


# -- REP604: memmap view escaping its owner -----------------------------------


def test_rep604_fires_on_view_returned_from_owner_block():
    assert "REP604" in rule_ids(
        {
            "m": """
                import numpy as np
                from tempfile import TemporaryDirectory
                __all__ = ["bad"]

                def bad():
                    with TemporaryDirectory() as tmp:
                        view = np.memmap(tmp + "/x", dtype=np.int64, mode="r")
                        return view
            """
        }
    )


def test_rep604_quiet_on_copy_out():
    assert "REP604" not in rule_ids(
        {
            "m": """
                import numpy as np
                from tempfile import TemporaryDirectory
                __all__ = ["good"]

                def good():
                    with TemporaryDirectory() as tmp:
                        view = np.memmap(tmp + "/x", dtype=np.int64, mode="r")
                        return np.array(view)
            """
        }
    )


def test_rep604_quiet_on_return_after_block():
    assert "REP604" not in rule_ids(
        {
            "m": """
                import numpy as np
                from tempfile import TemporaryDirectory
                __all__ = ["good"]

                def good(consume):
                    with TemporaryDirectory() as tmp:
                        view = np.memmap(tmp + "/x", dtype=np.int64, mode="r")
                        total = consume(view)
                    return total
            """
        }
    )
