"""Bitwise identity of the columnar scoring kernels vs the scalar oracle.

The columnar fast path's contract (see ``repro/scoring/columnar.py``) is
not "close": for every registry function, ``score_batch`` over a
:class:`~repro.scoring.columnar.GroupStatsBatch` must produce the same
float64 bytes as the per-group ``__call__`` oracle applied row by row.
Hypothesis drives random graphs (directed and undirected) and group
sets that always include the degenerate shapes — a singleton group, an
isolated (edge-free) vertex, the whole graph (zero boundary), and a
random subset — because those exercise every ``np.where`` guard lane
in the kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import AnalysisContext, batch_group_stats_columns
from repro.scoring.columnar import (
    GroupStatsBatch,
    score_function_column,
    score_matrix,
)
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.scoring.registry import make_all_functions


@st.composite
def graph_and_groups(draw, directed):
    """A random graph plus groups covering every degenerate shape.

    Node ``n - 1`` is kept edge-free so a zero-degree singleton is
    always present; the group list always contains a singleton, the
    whole vertex set (zero boundary) and a random subset.
    """
    n = draw(st.integers(min_value=3, max_value=14))
    nodes = list(range(n))
    connectable = nodes[:-1]  # the last node stays isolated
    if directed:
        pairs = [(u, v) for u in connectable for v in connectable if u != v]
    else:
        pairs = [
            (u, v)
            for i, u in enumerate(connectable)
            for v in connectable[i + 1 :]
        ]
    edges = draw(
        st.lists(st.sampled_from(pairs), max_size=3 * n, unique=True)
    )
    graph = DiGraph() if directed else Graph()
    for node in nodes:
        graph.add_node(node)
    graph.add_edges_from(edges)

    random_group = draw(
        st.lists(
            st.sampled_from(nodes), min_size=1, max_size=n, unique=True
        )
    )
    member_lists = [
        [nodes[0]],  # singleton
        [nodes[-1]],  # isolated vertex: zero internal, zero boundary
        list(nodes),  # whole graph: zero boundary
        random_group,
    ]
    return graph, member_lists


@pytest.mark.parametrize("directed", [False, True])
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_score_batch_bitwise_identical_to_scalar_oracle(directed, data):
    graph, member_lists = data.draw(graph_and_groups(directed))
    context = AnalysisContext(graph)
    batch = batch_group_stats_columns(
        context,
        member_lists,
        graph_median_degree=context.median_degree,
        include_internal_adjacency=True,  # TPR needs neighbour rows
    )
    stats_list = list(batch.rows())
    for function in make_all_functions():
        oracle = np.array(
            [float(function(stats)) for stats in stats_list],
            dtype=np.float64,
        )
        column = score_function_column(function, batch)
        assert column.dtype == np.float64
        assert column.tobytes() == oracle.tobytes(), function.name


@pytest.mark.parametrize("directed", [False, True])
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_score_matrix_columns_match_per_function_scores(directed, data):
    graph, member_lists = data.draw(graph_and_groups(directed))
    context = AnalysisContext(graph)
    functions = make_all_functions()
    batch = batch_group_stats_columns(
        context,
        member_lists,
        graph_median_degree=context.median_degree,
        include_internal_adjacency=True,
    )
    matrix = score_matrix(functions, batch)
    assert matrix.shape == (len(batch), len(functions))
    for j, function in enumerate(functions):
        expected = score_function_column(function, batch)
        assert (
            np.ascontiguousarray(matrix[:, j]).tobytes()
            == expected.tobytes()
        ), function.name


def test_empty_batch_scores_to_zero_by_f_matrix():
    batch = GroupStatsBatch.empty(
        n=0, m=0, directed=False, graph_median_degree=0.0, with_neighbors=True
    )
    functions = make_all_functions()
    matrix = score_matrix(functions, batch)
    assert matrix.shape == (0, len(functions))
    assert matrix.dtype == np.float64
