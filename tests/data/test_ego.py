"""Ego-network model tests (Figs. 1-2 machinery)."""

import pytest

from repro.data.ego import EgoNetwork, EgoNetworkCollection
from repro.data.groups import Circle


def _network(ego, alters_edges, circle_members=(), directed=True):
    circles = (
        [Circle(name="c0", members=frozenset(circle_members), owner=ego)]
        if circle_members
        else []
    )
    return EgoNetwork(
        ego=ego, alter_edges=list(alters_edges), circles=circles, directed=directed
    )


class TestEgoNetwork:
    def test_alters_from_edges_and_circles(self):
        network = _network(0, [(1, 2)], circle_members=(3,))
        assert network.alters == frozenset({1, 2, 3})
        assert network.vertices == frozenset({0, 1, 2, 3})

    def test_ego_excluded_from_alters(self):
        network = _network(0, [(0, 1), (1, 2)])
        assert 0 not in network.alters

    def test_graph_connects_ego_to_all_alters(self):
        network = _network(9, [(1, 2)], circle_members=(3,))
        graph = network.graph()
        assert graph.has_edge(9, 1)
        assert graph.has_edge(9, 3)
        assert graph.has_edge(1, 2)

    def test_graph_undirected_variant(self):
        network = _network(9, [(1, 2)], directed=False)
        graph = network.graph()
        assert not graph.is_directed
        assert graph.has_edge(2, 1)


class TestEgoNetworkCollection:
    def _collection(self):
        return EgoNetworkCollection(
            [
                _network(100, [(1, 2), (2, 3)]),
                _network(200, [(3, 4)]),  # overlaps via vertex 3
                _network(300, [(50, 51)]),  # isolated from the others
            ],
            name="test",
        )

    def test_sequence_protocol(self):
        collection = self._collection()
        assert len(collection) == 3
        assert collection[0].ego == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EgoNetworkCollection([])

    def test_duplicate_egos_rejected(self):
        with pytest.raises(ValueError):
            EgoNetworkCollection([_network(1, [(2, 3)]), _network(1, [(4, 5)])])

    def test_mixed_directedness_rejected(self):
        with pytest.raises(ValueError):
            EgoNetworkCollection(
                [_network(1, [(2, 3)]), _network(9, [(4, 5)], directed=False)]
            )

    def test_join_merges_overlapping_networks(self):
        joined = self._collection().join()
        # vertex 3 stitches the first two ego networks together
        assert joined.has_edge(100, 3)
        assert joined.has_edge(200, 3)
        assert joined.number_of_nodes() == 9

    def test_membership_counts(self):
        counts = self._collection().membership_counts()
        assert counts[3] == 2
        assert counts[1] == 1
        assert counts[100] == 1

    def test_membership_histogram(self):
        histogram = self._collection().membership_histogram()
        assert histogram[2] == 1  # only vertex 3 is in two networks
        assert histogram[1] == 8

    def test_overlap_fraction(self):
        # two of three networks share vertex 3
        assert self._collection().overlap_fraction() == pytest.approx(2 / 3)

    def test_pairwise_overlaps(self):
        overlaps = self._collection().pairwise_overlaps()
        assert overlaps == {(100, 200): 1}

    def test_circles_namespaced_by_ego(self):
        collection = EgoNetworkCollection(
            [
                _network(1, [(2, 3)], circle_members=(2, 3)),
                _network(9, [(4, 5)], circle_members=(4, 5)),
            ]
        )
        groups = collection.circles()
        assert sorted(g.name for g in groups) == ["1/c0", "9/c0"]
        assert groups[0].owner in (1, 9)
