"""Static compressed-sparse-row snapshot of a graph.

Pure-Python adjacency dicts are convenient for mutation but slow for
whole-graph kernels (BFS sweeps, triangle counting, clustering).
:class:`CSRGraph` freezes a :class:`~repro.graph.Graph` or
:class:`~repro.graph.DiGraph` into numpy ``indptr``/``indices`` arrays with
sorted adjacency, the format the algorithm kernels in
:mod:`repro.algorithms` operate on.

For a directed graph the CSR stores the *undirected skeleton* by default
(every edge usable in both directions), which is what path-length and
clustering measurements on social graphs conventionally use; the directed
out/in structure is available via ``orientation``.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from typing import Literal

import numpy as np

from repro.exceptions import GraphError
from repro.graph.convert import integer_index
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph

Node = Hashable
Orientation = Literal["union", "out", "in"]

__all__ = ["CSRGraph", "freeze_directed"]

#: Memory cap (bytes) for the cached dense bitset adjacency.  At one bit
#: per vertex pair this admits graphs up to ~23k vertices — comfortably
#: beyond the paper's ego-network corpora — while refusing to allocate
#: gigabytes on web-scale inputs.
_DENSE_BITS_LIMIT = 64 * 1024 * 1024

#: Sentinel distinguishing "never computed" from "computed: over the cap".
_UNSET = object()


def _edge_arrays(
    nodes: list[Node],
    index_of: dict[Node, int],
    adjacency: dict[Node, frozenset[Node] | set[Node]],
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a label-level adjacency into ``(counts, dsts)`` id arrays.

    ``counts[i]`` is the row length of vertex ``i``; ``dsts`` concatenates
    the (unsorted) neighbour ids row by row.  The label -> id dictionary
    lookups here are the only per-half-edge Python work of a freeze.
    """
    counts = np.fromiter(
        (len(adjacency[node]) for node in nodes),
        dtype=np.int64,
        count=len(nodes),
    )
    dsts = np.fromiter(
        (index_of[other] for node in nodes for other in adjacency[node]),
        dtype=np.int64,
        count=int(counts.sum()),
    )
    return counts, dsts


def _rows_from_counts(
    counts: np.ndarray, dsts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort each row of a flattened adjacency; return ``(indptr, indices)``."""
    srcs = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    # srcs is non-decreasing, so one global lexsort sorts within rows.
    order = np.lexsort((dsts, srcs))
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return indptr, dsts[order]


def _union_rows(
    n: int, srcs: np.ndarray, dsts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR of the undirected skeleton of directed ``srcs -> dsts`` edges.

    Both directions of every arc are keyed as ``src * n + dst``; a sort
    plus neighbour-difference mask collapses reciprocal pairs and leaves
    rows sorted (faster than ``np.unique``'s hash path at this scale).
    """
    keys = np.concatenate([srcs, dsts]) * np.int64(n) + np.concatenate(
        [dsts, srcs]
    )
    keys.sort()
    if keys.size:
        keep = np.empty(keys.size, dtype=bool)
        keep[0] = True
        np.not_equal(keys[1:], keys[:-1], out=keep[1:])
        keys = keys[keep]
    counts = np.bincount(keys // n, minlength=n)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return indptr, keys % n


class CSRGraph:
    """Immutable integer-indexed adjacency structure.

    Attributes
    ----------
    indptr, indices:
        Standard CSR arrays: the neighbours of vertex ``i`` are
        ``indices[indptr[i]:indptr[i + 1]]``, sorted ascending.
    nodes:
        Original node labels; ``nodes[i]`` is the label of vertex ``i``.
    index_of:
        Inverse mapping from label to integer vertex id.
    """

    __slots__ = (
        "indptr",
        "indices",
        "nodes",
        "index_of",
        "orientation",
        "_degree_array",
        "_edge_keys",
        "_adjacency_bits",
    )

    def __init__(
        self,
        graph: "Graph | DiGraph | CSRGraph",
        *,
        orientation: Orientation = "union",
    ) -> None:
        self._degree_array: np.ndarray | None = None
        self._edge_keys: np.ndarray | None = None
        self._adjacency_bits: np.ndarray | None | object = _UNSET
        if isinstance(graph, CSRGraph):
            # Already frozen: adopt the snapshot instead of failing on the
            # missing dict-adjacency interface.  The arrays are immutable
            # by convention, so sharing them is safe.
            if orientation != graph.orientation:
                raise ValueError(
                    f"cannot re-freeze a CSRGraph with orientation "
                    f"{graph.orientation!r} as {orientation!r}; freeze from "
                    "the original graph instead"
                )
            self.orientation = graph.orientation
            self.indptr = graph.indptr
            self.indices = graph.indices
            self.nodes = graph.nodes
            self.index_of = graph.index_of
            return
        if graph.number_of_nodes() == 0:
            raise GraphError(
                "cannot freeze an empty graph into CSR form; add vertices "
                "before constructing a CSRGraph"
            )
        if not graph.is_directed and orientation != "union":
            raise ValueError("orientation only applies to directed graphs")
        self.orientation: Orientation = orientation
        self.index_of, self.nodes = integer_index(graph)
        n = len(self.nodes)
        if not graph.is_directed:
            counts, dsts = _edge_arrays(
                self.nodes, self.index_of, dict(graph.adjacency())
            )
            self.indptr, self.indices = _rows_from_counts(counts, dsts)
        elif orientation == "out":
            counts, dsts = _edge_arrays(
                self.nodes, self.index_of, dict(graph.successors_adjacency())
            )
            self.indptr, self.indices = _rows_from_counts(counts, dsts)
        elif orientation == "in":
            counts, dsts = _edge_arrays(
                self.nodes, self.index_of, dict(graph.predecessors_adjacency())
            )
            self.indptr, self.indices = _rows_from_counts(counts, dsts)
        else:  # union of out- and in-neighbours, each counted once
            counts, dsts = _edge_arrays(
                self.nodes, self.index_of, dict(graph.successors_adjacency())
            )
            srcs = np.repeat(np.arange(n, dtype=np.int64), counts)
            self.indptr, self.indices = _union_rows(n, srcs, dsts)

    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        nodes: list[Node],
        index_of: dict[Node, int],
        *,
        orientation: Orientation = "union",
    ) -> "CSRGraph":
        """Assemble a snapshot directly from prebuilt CSR arrays.

        Trusted-input constructor for callers that derive several
        orientations from one edge-array pass (the analysis engine).  The
        arrays are adopted, not copied; rows must already be sorted.
        """
        self = object.__new__(cls)
        self._degree_array = None
        self._edge_keys = None
        self._adjacency_bits = _UNSET
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.nodes = nodes
        self.index_of = index_of
        self.orientation = orientation
        return self

    # -- basic accessors -----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.nodes)

    @property
    def num_half_edges(self) -> int:
        """Total adjacency length (2m for an undirected snapshot)."""
        return len(self.indices)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Sorted neighbour ids of integer ``vertex`` (a live array slice)."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def degree(self, vertex: int) -> int:
        """Degree of integer ``vertex`` in this orientation."""
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def degrees(self) -> np.ndarray:
        """Degree array over all vertices (freshly computed)."""
        return np.diff(self.indptr)

    def degree_array(self) -> np.ndarray:
        """Cached degree array over all vertices.

        The array is computed once and shared; treat it as read-only.
        This is the degree source the analysis engine
        (:class:`repro.engine.AnalysisContext`) builds on.
        """
        if self._degree_array is None:
            self._degree_array = np.diff(self.indptr)
        return self._degree_array

    def edge_keys(self) -> np.ndarray:
        """Cached globally sorted ``src * n + dst`` key per half-edge.

        Because rows appear in vertex order and are sorted internally, the
        key array is sorted as a whole, so ``(u, v)`` adjacency tests
        become one :func:`numpy.searchsorted` probe — the engine's batch
        pair kernel relies on this.  Treat the array as read-only.
        """
        if self._edge_keys is None:
            n = self.num_vertices
            self._edge_keys = (
                np.repeat(np.arange(n, dtype=np.int64), self.degree_array())
                * np.int64(n)
                + self.indices
            )
        return self._edge_keys

    def adjacency_bits(self) -> np.ndarray | None:
        """Cached dense bitset adjacency, or ``None`` above the memory cap.

        Row ``u`` packs one bit per potential neighbour: ``v`` is adjacent
        iff ``bits[u, v >> 3] >> (v & 7) & 1``.  Costs ``n^2/8`` bytes, so
        graphs beyond :data:`_DENSE_BITS_LIMIT` return ``None`` and
        callers fall back to :meth:`edge_keys` probes.  Treat the matrix
        as read-only.
        """
        if self._adjacency_bits is _UNSET:
            n = self.num_vertices
            width = (n + 7) >> 3
            if n * width > _DENSE_BITS_LIMIT:
                self._adjacency_bits = None
            else:
                bits = np.zeros(n * width, dtype=np.uint8)
                if self.indices.size:
                    srcs = np.repeat(
                        np.arange(n, dtype=np.int64), self.degree_array()
                    )
                    flat = srcs * np.int64(width) + (self.indices >> 3)
                    values = (
                        np.uint8(1) << (self.indices & 7).astype(np.uint8)
                    )
                    # flat is non-decreasing (rows in order, sorted rows),
                    # so same-byte runs are contiguous: OR each run once.
                    starts = np.flatnonzero(
                        np.concatenate(([True], flat[1:] != flat[:-1]))
                    )
                    bits[flat[starts]] = np.bitwise_or.reduceat(values, starts)
                self._adjacency_bits = bits.reshape(n, width)
        result = self._adjacency_bits
        assert result is None or isinstance(result, np.ndarray)
        return result

    def vertex_ids(self, labels: Sequence[Node]) -> np.ndarray:
        """Map node labels to integer vertex ids."""
        return np.fromiter(
            (self.index_of[label] for label in labels),
            dtype=np.int64,
            count=len(labels),
        )

    def labels(self, vertex_ids: Sequence[int]) -> list[Node]:
        """Map integer vertex ids back to node labels."""
        return [self.nodes[int(i)] for i in vertex_ids]

    def __repr__(self) -> str:
        return (
            f"<CSRGraph {self.num_vertices} vertices, "
            f"{self.num_half_edges} half-edges, "
            f"orientation={self.orientation!r}>"
        )


def freeze_directed(graph: DiGraph) -> tuple[CSRGraph, CSRGraph, CSRGraph]:
    """Freeze a directed graph into ``(union, out, in)`` CSR snapshots.

    All three orientations derive from a single successor-adjacency pass:
    the ``in`` rows are the transposed edge arrays re-sorted, the union
    rows the key-deduplicated symmetrisation — no second or third walk
    over the Python dicts.  Produces arrays bit-identical to three
    separate ``CSRGraph(graph, orientation=...)`` freezes.
    """
    if graph.number_of_nodes() == 0:
        raise GraphError(
            "cannot freeze an empty graph into CSR form; add vertices "
            "before constructing a CSRGraph"
        )
    index_of, nodes = integer_index(graph)
    n = len(nodes)
    counts, dsts = _edge_arrays(nodes, index_of, dict(graph.successors_adjacency()))
    srcs = np.repeat(np.arange(n, dtype=np.int64), counts)
    out_indptr, out_indices = _rows_from_counts(counts, dsts)
    # Transpose: group by destination, neighbours sorted by source.
    order = np.lexsort((srcs, dsts))
    in_counts = np.bincount(dsts, minlength=n)
    in_indptr = np.concatenate(([0], np.cumsum(in_counts)))
    union_indptr, union_indices = _union_rows(n, srcs, dsts)
    return (
        CSRGraph.from_arrays(
            union_indptr, union_indices, nodes, index_of, orientation="union"
        ),
        CSRGraph.from_arrays(
            out_indptr, out_indices, nodes, index_of, orientation="out"
        ),
        CSRGraph.from_arrays(
            in_indptr, srcs[order], nodes, index_of, orientation="in"
        ),
    )
