#!/usr/bin/env python
"""Lint-engine benchmark: single-process vs ``--jobs N`` over ``src/``.

The flow-sensitive rules (CFG construction, reaching definitions, origin
fixpoints) made the lint pass meaningfully heavier than the PR-1
per-statement visitors, which is why ``lint_paths`` grew a multiprocessing
path.  This benchmark records the wall time of both paths over the real
``src/`` tree so the parallel path has a perf trail, and asserts they
produce identical findings (the determinism contract behind
``--jobs``-byte-identical output).  Emits a JSON report::

    python benchmarks/bench_lint.py              # full, prints JSON
    python benchmarks/bench_lint.py --jobs 8     # explicit worker count
    python benchmarks/bench_lint.py --repeat 5

``--interproc`` exercises the whole-program pass (call graph + function
summaries + REP4xx/REP5xx) in isolation: it measures a cold run and then
warm re-runs that hit the content-hash source cache and the program-hash
summary cache, asserts the warm wall time stays under a bound
(``--warm-budget``, default 10 s — generous so CI boxes never flake), and
re-checks serial/parallel byte-identity with the interprocedural rules
active::

    python benchmarks/bench_lint.py --interproc
    python benchmarks/bench_lint.py --interproc --warm-budget 5

``--tier3`` does the same for the scale-soundness pass (dtype-interval
analysis, resource lifetimes, streaming-memory contracts — REP601-606):
cold run, warm cache re-runs under ``--warm-budget``, and serial vs
parallel byte-identity::

    python benchmarks/bench_lint.py --tier3 --repeat 2
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import time
from pathlib import Path

from repro.devtools.lint import LintConfig, iter_python_files, lint_paths

ROOT = Path(__file__).resolve().parents[1]

#: Rule ids of the interprocedural families (REP4xx parallel safety,
#: REP5xx cache soundness).
INTERPROC_IDS = (
    "REP401",
    "REP402",
    "REP403",
    "REP404",
    "REP501",
    "REP502",
    "REP503",
)

#: Rule ids of the scale-soundness families (REP60x dtype intervals,
#: resource lifetimes, streaming-memory contracts).
TIER3_IDS = (
    "REP601",
    "REP602",
    "REP603",
    "REP604",
    "REP605",
    "REP606",
)


def _time_lint(paths, config, *, jobs: int, repeat: int) -> tuple[float, list]:
    best = float("inf")
    findings: list = []
    for _ in range(repeat):
        start = time.perf_counter()
        findings = lint_paths(paths, config, jobs=jobs)
        best = min(best, time.perf_counter() - start)
    return best, findings


def _bench_full(args: argparse.Namespace) -> int:
    src = ROOT / "src"
    config = LintConfig.from_pyproject(ROOT / "pyproject.toml")
    files = list(iter_python_files([src]))

    serial_seconds, serial_findings = _time_lint(
        [src], config, jobs=1, repeat=args.repeat
    )
    parallel_seconds, parallel_findings = _time_lint(
        [src], config, jobs=args.jobs, repeat=args.repeat
    )

    identical = [v.format() for v in serial_findings] == [
        v.format() for v in parallel_findings
    ]
    report = {
        "files": len(files),
        "rules": len(config.active_rules()),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "jobs": args.jobs,
        "speedup": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
        "findings": len(serial_findings),
        "identical_output": identical,
    }
    print(json.dumps(report, indent=2))
    if not identical:
        print("FAIL: parallel findings differ from serial", file=sys.stderr)
        return 1
    return 0


def _bench_program_pass(
    args: argparse.Namespace, *, mode: str, ids: tuple[str, ...]
) -> int:
    import dataclasses

    src = ROOT / "src"
    base = LintConfig.from_pyproject(ROOT / "pyproject.toml")
    config = dataclasses.replace(base, select=ids, ignore=())
    files = list(iter_python_files([src]))

    # Cold: first whole-program run of this process pays parsing, call
    # graph construction and the bottom-up summary fixpoint.
    cold_start = time.perf_counter()
    cold_findings = lint_paths([src], config, jobs=1)
    cold_seconds = time.perf_counter() - cold_start

    # Warm: unchanged sources hit the content-hash source cache and the
    # program-hash summary cache; this is the watch-loop/CI steady state.
    warm_seconds, warm_findings = _time_lint(
        [src], config, jobs=1, repeat=args.repeat
    )
    parallel_seconds, parallel_findings = _time_lint(
        [src], config, jobs=args.jobs, repeat=args.repeat
    )

    warm_lines = [v.format() for v in warm_findings]
    identical = (
        [v.format() for v in cold_findings] == warm_lines
        and warm_lines == [v.format() for v in parallel_findings]
    )
    within_budget = warm_seconds <= args.warm_budget
    report = {
        "mode": mode,
        "files": len(files),
        "rules": list(ids),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_budget_seconds": args.warm_budget,
        "within_budget": within_budget,
        "parallel_seconds": round(parallel_seconds, 4),
        "jobs": args.jobs,
        "findings": len(warm_findings),
        "identical_output": identical,
    }
    print(json.dumps(report, indent=2))
    if not identical:
        print(
            f"FAIL: {mode} findings differ across cold/warm/parallel runs",
            file=sys.stderr,
        )
        return 1
    if not within_budget:
        print(
            f"FAIL: warm {mode} lint took {warm_seconds:.2f}s "
            f"(budget {args.warm_budget:.2f}s)",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, multiprocessing.cpu_count()),
        help="worker count for the parallel run",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="runs per path; best is kept"
    )
    parser.add_argument(
        "--interproc",
        action="store_true",
        help="benchmark the whole-program REP4xx/REP5xx pass in isolation",
    )
    parser.add_argument(
        "--tier3",
        action="store_true",
        help="benchmark the scale-soundness REP601-606 pass in isolation",
    )
    parser.add_argument(
        "--warm-budget",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="max allowed warm-cache wall time in --interproc/--tier3 mode",
    )
    args = parser.parse_args(argv)
    if args.interproc and args.tier3:
        print("error: pick one of --interproc / --tier3", file=sys.stderr)
        return 2
    if args.interproc:
        return _bench_program_pass(args, mode="interproc", ids=INTERPROC_IDS)
    if args.tier3:
        return _bench_program_pass(args, mode="tier3", ids=TIER3_IDS)
    return _bench_full(args)


if __name__ == "__main__":
    sys.exit(main())
