"""Incremental freeze — `ContextDelta` against the full-refreeze oracle.

The oracle is the legacy path: mutate a copy of the dict graph and
freeze it from scratch. A patched context must be indistinguishable
from that — same fingerprint, degrees, median and edge count — and
`rescore_groups` must return stats byte-identical to a full batch pass
while invoking the kernel only for dirty groups.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.data import Community, GroupSet, VertexGroup
from repro.engine import (
    AnalysisContext,
    ContextDelta,
    batch_group_stats,
    batch_group_stats_columns,
)
from repro.engine.delta import rescore_groups, rescore_groups_columns
from repro.scoring.columnar import GroupStatsBatch, score_matrix
from repro.scoring.internal import TriangleParticipationRatio
from repro.scoring.registry import make_all_functions
from repro.exceptions import GraphError, NodeNotFound
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.obs.instruments import GROUPS_SCORED
from repro.obs.manifest import fingerprint_context


@st.composite
def graph_and_delta(draw, directed):
    """A random graph plus disjoint add/remove edge batches."""
    n = draw(st.integers(min_value=3, max_value=16))
    nodes = [f"v{i:02d}" for i in range(n)]
    if directed:
        pairs = [(u, v) for u in nodes for v in nodes if u != v]
    else:
        pairs = [(u, v) for i, u in enumerate(nodes) for v in nodes[i + 1 :]]
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**16)))
    shuffled = list(pairs)
    rng.shuffle(shuffled)
    cut = draw(st.integers(min_value=1, max_value=max(1, len(shuffled) // 2)))
    present, absent = shuffled[:cut], shuffled[cut:]
    graph = DiGraph() if directed else Graph()
    for node in nodes:
        graph.add_node(node)
    graph.add_edges_from(present)
    removes = draw(
        st.lists(st.sampled_from(present), max_size=4, unique=True)
    )
    adds = (
        draw(st.lists(st.sampled_from(absent), max_size=4, unique=True))
        if absent
        else []
    )
    return graph, tuple(adds), tuple(removes)


def assert_contexts_identical(patched, oracle):
    assert patched.num_vertices == oracle.num_vertices
    assert patched.num_edges == oracle.num_edges
    assert patched.median_degree == oracle.median_degree
    assert np.array_equal(patched.degree_array, oracle.degree_array)
    assert fingerprint_context(patched) == fingerprint_context(oracle)


@pytest.mark.parametrize("directed", [False, True])
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_delta_matches_full_refreeze_oracle(directed, data):
    graph, adds, removes = data.draw(graph_and_delta(directed))
    context = AnalysisContext(graph)
    delta = ContextDelta(add_edges=adds, remove_edges=removes)

    mutated = graph.copy()
    for u, v in removes:
        mutated.remove_edge(u, v)
    for u, v in adds:
        mutated.add_edge(u, v)

    patched = delta.apply(context)
    assert_contexts_identical(patched, AnalysisContext(mutated))
    # The input context is untouched.
    assert context.num_edges == AnalysisContext(graph).num_edges


@pytest.fixture
def community_fixture(small_community_dataset):
    context = AnalysisContext(small_community_dataset.graph)
    groups = list(small_community_dataset.groups)
    return context, groups


class TestRescoreGroups:
    def delta_for(self, context, groups):
        """Remove one edge incident to the first group's lowest member."""
        members = sorted(groups[0].members)
        u = members[0]
        row = context.csr.neighbors(context.index_of[u])
        v = context.csr.nodes[int(row[0])]
        return ContextDelta(remove_edges=((u, v),))

    def test_identical_to_full_pass_and_kernel_skips_clean_groups(
        self, community_fixture
    ):
        context, groups = community_fixture
        delta = self.delta_for(context, groups)
        median = context.median_degree
        member_lists = [list(group.members) for group in groups]
        baseline = {
            group.name: stats
            for group, stats in zip(
                groups,
                batch_group_stats(
                    context, member_lists, graph_median_degree=median
                ),
            )
        }

        patched = delta.apply(context)
        dirty = delta.dirty_names(groups)
        assert dirty  # the removed edge touches at least one group
        assert len(dirty) < len(groups)  # and leaves others clean

        obs.enable(name="delta-kernel")
        try:
            before = GROUPS_SCORED.value()
            got = rescore_groups(
                patched,
                groups,
                baseline,
                dirty,
                graph_median_degree=patched.median_degree,
            )
            scored = GROUPS_SCORED.value() - before
        finally:
            obs.disable()
        assert scored == len(dirty)

        want = batch_group_stats(
            patched, member_lists, graph_median_degree=patched.median_degree
        )
        for group, oracle in zip(groups, want):
            stats = got[group.name]
            assert stats.members == oracle.members
            assert stats.n == oracle.n
            assert stats.m == oracle.m
            assert stats.n_C == oracle.n_C
            assert stats.m_C == oracle.m_C
            assert stats.c_C == oracle.c_C
            assert stats.directed == oracle.directed
            assert stats.graph_median_degree == oracle.graph_median_degree
            for attribute in (
                "member_degrees",
                "member_internal_degrees",
                "member_in_degrees",
                "member_out_degrees",
            ):
                assert np.array_equal(
                    getattr(stats, attribute), getattr(oracle, attribute)
                ), attribute

    def test_missing_previous_entries_are_treated_as_dirty(
        self, community_fixture
    ):
        context, groups = community_fixture
        got = rescore_groups(
            context,
            groups,
            previous={},
            dirty=frozenset(),
            graph_median_degree=context.median_degree,
        )
        assert set(got) == {group.name for group in groups}


def assert_batches_bitwise_identical(got, want):
    assert got.n == want.n
    assert got.m == want.m
    assert got.directed == want.directed
    assert got.graph_median_degree == want.graph_median_degree
    assert got.members == want.members
    for column in (
        "n_C",
        "m_C",
        "c_C",
        "group_offsets",
        "member_degrees",
        "member_internal_degrees",
        "member_in_degrees",
        "member_out_degrees",
    ):
        assert (
            getattr(got, column).tobytes() == getattr(want, column).tobytes()
        ), column
    if want.member_internal_neighbors is None:
        assert got.member_internal_neighbors is None
    else:
        assert got.member_internal_neighbors is not None
        assert len(got.member_internal_neighbors) == len(
            want.member_internal_neighbors
        )
        for got_row, want_row in zip(
            got.member_internal_neighbors, want.member_internal_neighbors
        ):
            assert got_row.tobytes() == want_row.tobytes()


class TestRescoreGroupsColumns:
    @pytest.mark.parametrize("include_adjacency", [False, True])
    def test_bitwise_identical_to_full_columnar_pass(
        self, community_fixture, include_adjacency
    ):
        context, groups = community_fixture
        delta = TestRescoreGroups().delta_for(context, groups)
        member_lists = [list(group.members) for group in groups]
        baseline = batch_group_stats_columns(
            context,
            member_lists,
            graph_median_degree=context.median_degree,
            include_internal_adjacency=include_adjacency,
        )
        baseline_names = [group.name for group in groups]

        patched = delta.apply(context)
        dirty = delta.dirty_names(groups)
        assert dirty and len(dirty) < len(groups)

        got = rescore_groups_columns(
            patched,
            groups,
            baseline,
            baseline_names,
            dirty,
            graph_median_degree=patched.median_degree,
            include_internal_adjacency=include_adjacency,
        )
        want = batch_group_stats_columns(
            patched,
            member_lists,
            graph_median_degree=patched.median_degree,
            include_internal_adjacency=include_adjacency,
        )
        assert_batches_bitwise_identical(got, want)

        # The spliced batch also scores bitwise-identically.
        functions = make_all_functions()
        if not include_adjacency:
            functions = [
                f
                for f in functions
                if not isinstance(f, TriangleParticipationRatio)
            ]
        assert (
            score_matrix(functions, got).tobytes()
            == score_matrix(functions, want).tobytes()
        )

    def test_missing_previous_names_are_recomputed(self, community_fixture):
        context, groups = community_fixture
        empty = GroupStatsBatch.empty(
            n=context.num_vertices,
            m=context.num_edges,
            directed=context.is_directed,
            graph_median_degree=context.median_degree,
        )
        got = rescore_groups_columns(
            context,
            groups,
            empty,
            previous_names=[],
            dirty=frozenset(),
            graph_median_degree=context.median_degree,
        )
        want = batch_group_stats_columns(
            context,
            [list(group.members) for group in groups],
            graph_median_degree=context.median_degree,
        )
        assert_batches_bitwise_identical(got, want)

    def test_previous_without_neighbors_forces_full_recompute(
        self, community_fixture
    ):
        context, groups = community_fixture
        member_lists = [list(group.members) for group in groups]
        baseline = batch_group_stats_columns(
            context, member_lists, graph_median_degree=context.median_degree
        )
        assert baseline.member_internal_neighbors is None
        got = rescore_groups_columns(
            context,
            groups,
            baseline,
            [group.name for group in groups],
            dirty=frozenset(),  # clean, but the adjacency rows are absent
            graph_median_degree=context.median_degree,
            include_internal_adjacency=True,
        )
        want = batch_group_stats_columns(
            context,
            member_lists,
            graph_median_degree=context.median_degree,
            include_internal_adjacency=True,
        )
        assert_batches_bitwise_identical(got, want)


class TestStrictness:
    def test_adding_present_edge_raises(self, two_cliques_graph):
        context = AnalysisContext(two_cliques_graph)
        with pytest.raises(GraphError):
            ContextDelta(add_edges=((0, 1),)).apply(context)

    def test_removing_absent_edge_raises(self, two_cliques_graph):
        context = AnalysisContext(two_cliques_graph)
        with pytest.raises(GraphError):
            ContextDelta(remove_edges=((0, 7),)).apply(context)

    def test_self_loop_rejected_at_construction(self):
        with pytest.raises(GraphError):
            ContextDelta(add_edges=((3, 3),))

    def test_unknown_label_raises_node_not_found(self, two_cliques_graph):
        context = AnalysisContext(two_cliques_graph)
        with pytest.raises(NodeNotFound):
            ContextDelta(add_edges=((0, 99),)).apply(context)

    def test_add_and_remove_same_edge_conflicts(self, two_cliques_graph):
        context = AnalysisContext(two_cliques_graph)
        with pytest.raises(GraphError):
            ContextDelta(
                add_edges=((0, 1),), remove_edges=((1, 0),)
            ).apply(context)

    def test_duplicate_pair_rejected(self, two_cliques_graph):
        context = AnalysisContext(two_cliques_graph)
        with pytest.raises(GraphError):
            ContextDelta(remove_edges=((0, 1), (1, 0))).apply(context)


class TestMembershipEdits:
    def group_set(self):
        return GroupSet(
            name="gs",
            groups=[
                Community(name="a", members=frozenset({0, 1, 2})),
                Community(name="b", members=frozenset({4, 5, 6})),
            ],
        )

    def test_apply_groups_edits_membership(self):
        delta = ContextDelta(
            add_members=(("a", 3),), remove_members=(("b", 6),)
        )
        edited = delta.apply_groups(self.group_set())
        by_name = {group.name: set(group.members) for group in edited}
        assert by_name["a"] == {0, 1, 2, 3}
        assert by_name["b"] == {4, 5}

    def test_apply_groups_preserves_kind(self):
        delta = ContextDelta(add_members=(("a", 3),))
        edited = delta.apply_groups(self.group_set())
        assert all(isinstance(group, Community) for group in edited)

    def test_adding_present_member_raises(self):
        with pytest.raises(GraphError):
            ContextDelta(add_members=(("a", 1),)).apply_groups(
                self.group_set()
            )

    def test_removing_absent_member_raises(self):
        with pytest.raises(GraphError):
            ContextDelta(remove_members=(("a", 9),)).apply_groups(
                self.group_set()
            )

    def test_unknown_group_raises(self):
        with pytest.raises(GraphError):
            ContextDelta(add_members=(("zzz", 1),)).apply_groups(
                self.group_set()
            )

    def test_emptying_a_group_raises(self):
        delta = ContextDelta(
            remove_members=(("a", 0), ("a", 1), ("a", 2))
        )
        with pytest.raises(GraphError):
            delta.apply_groups(self.group_set())


class TestDirtyNames:
    def groups(self):
        return [
            VertexGroup(name="left", members=frozenset({0, 1, 2, 3})),
            VertexGroup(name="right", members=frozenset({4, 5, 6, 7})),
        ]

    def test_edge_endpoint_dirties_containing_group_only(self):
        delta = ContextDelta(remove_edges=((0, 1),))
        assert delta.dirty_names(self.groups()) == {"left"}

    def test_membership_edit_dirties_its_group(self):
        delta = ContextDelta(remove_members=(("right", 7),))
        assert delta.dirty_names(self.groups()) == {"right"}

    def test_bridge_edge_dirties_both_sides(self):
        delta = ContextDelta(remove_edges=((3, 4),))
        assert delta.dirty_names(self.groups()) == {"left", "right"}

    def test_empty_delta_dirties_nothing(self):
        assert ContextDelta().dirty_names(self.groups()) == frozenset()
