#!/usr/bin/env python
"""Lint-engine benchmark: single-process vs ``--jobs N`` over ``src/``.

The flow-sensitive rules (CFG construction, reaching definitions, origin
fixpoints) made the lint pass meaningfully heavier than the PR-1
per-statement visitors, which is why ``lint_paths`` grew a multiprocessing
path.  This benchmark records the wall time of both paths over the real
``src/`` tree so the parallel path has a perf trail, and asserts they
produce identical findings (the determinism contract behind
``--jobs``-byte-identical output).  Emits a JSON report::

    python benchmarks/bench_lint.py              # full, prints JSON
    python benchmarks/bench_lint.py --jobs 8     # explicit worker count
    python benchmarks/bench_lint.py --repeat 5
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import time
from pathlib import Path

from repro.devtools.lint import LintConfig, iter_python_files, lint_paths

ROOT = Path(__file__).resolve().parents[1]


def _time_lint(paths, config, *, jobs: int, repeat: int) -> tuple[float, list]:
    best = float("inf")
    findings: list = []
    for _ in range(repeat):
        start = time.perf_counter()
        findings = lint_paths(paths, config, jobs=jobs)
        best = min(best, time.perf_counter() - start)
    return best, findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, multiprocessing.cpu_count()),
        help="worker count for the parallel run",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="runs per path; best is kept"
    )
    args = parser.parse_args(argv)

    src = ROOT / "src"
    config = LintConfig.from_pyproject(ROOT / "pyproject.toml")
    files = list(iter_python_files([src]))

    serial_seconds, serial_findings = _time_lint(
        [src], config, jobs=1, repeat=args.repeat
    )
    parallel_seconds, parallel_findings = _time_lint(
        [src], config, jobs=args.jobs, repeat=args.repeat
    )

    identical = [v.format() for v in serial_findings] == [
        v.format() for v in parallel_findings
    ]
    report = {
        "files": len(files),
        "rules": len(config.active_rules()),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "jobs": args.jobs,
        "speedup": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
        "findings": len(serial_findings),
        "identical_output": identical,
    }
    print(json.dumps(report, indent=2))
    if not identical:
        print("FAIL: parallel findings differ from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
