"""Undirected simple graph backed by adjacency sets.

:class:`Graph` is the library's undirected substrate.  It stores one
``dict`` mapping each node to the ``set`` of its neighbours, keeps the edge
count incrementally, and exposes live views for nodes, edges and degrees.
Self-loops and parallel edges are not representable: the graph is simple,
matching the social-graph model of the paper (section IV).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.exceptions import EdgeNotFound, NodeNotFound
from repro.graph.views import DegreeView, EdgeView, NodeView

Node = Hashable
Edge = tuple[Node, Node]

__all__ = ["Graph"]


class Graph:
    """A simple undirected graph.

    Examples
    --------
    >>> g = Graph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.number_of_nodes(), g.number_of_edges()
    (3, 2)
    """

    is_directed = False

    __slots__ = ("_adj", "_num_edges", "name")

    def __init__(
        self,
        edges: Iterable[Edge] | None = None,
        *,
        name: str = "",
    ) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._num_edges = 0
        self.name = name
        if edges is not None:
            self.add_edges_from(edges)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __contains__(self, node: object) -> bool:
        try:
            return node in self._adj
        except TypeError:  # unhashable
            return False

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<{type(self).__name__}{label} with "
            f"{self.number_of_nodes()} nodes and "
            f"{self.number_of_edges()} edges>"
        )

    # -- mutation ------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (a no-op if already present)."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Self-loops are rejected because the social graph is simple.
        """
        if u == v:
            raise ValueError(f"self-loop ({u!r}, {v!r}) not allowed in a simple graph")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        """Add every edge in ``edges``; duplicates are ignored."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        try:
            neighbors = self._adj.pop(node)
        except KeyError:
            raise NodeNotFound(node) from None
        for other in neighbors:
            self._adj[other].discard(node)
        self._num_edges -= len(neighbors)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``."""
        if not self.has_edge(u, v):
            raise EdgeNotFound(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    # -- queries ------------------------------------------------------------

    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the undirected edge ``{u, v}`` exists."""
        neighbors = self._adj.get(u)
        return neighbors is not None and v in neighbors

    def neighbors(self, node: Node) -> frozenset[Node]:
        """Return the neighbour set of ``node`` (as an immutable snapshot)."""
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise NodeNotFound(node) from None

    def adjacency(self) -> Iterator[tuple[Node, set[Node]]]:
        """Iterate over ``(node, neighbour_set)`` pairs.

        The yielded sets are the live internal sets; callers must not mutate
        them.  This is the fast path used by algorithm kernels.
        """
        return iter(self._adj.items())

    def number_of_nodes(self) -> int:
        """Return the number of nodes ``n``."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Return the number of edges ``m`` (each undirected edge once)."""
        return self._num_edges

    @property
    def nodes(self) -> NodeView:
        """Set-like live view of the nodes."""
        return NodeView(self._adj)

    @property
    def edges(self) -> EdgeView:
        """Live view of the edges as ``(u, v)`` tuples."""
        return EdgeView(self)

    @property
    def degree(self) -> DegreeView:
        """Mapping-like live view of node degrees."""
        return DegreeView(self)

    # -- derived graphs ------------------------------------------------------

    def copy(self) -> "Graph":
        """Return an independent deep copy of the graph structure."""
        clone = Graph(name=self.name)
        clone._adj = {node: set(neighbors) for node, neighbors in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes`` as a new :class:`Graph`.

        Nodes not present in the graph raise :class:`NodeNotFound`.
        """
        selected = set(nodes)
        for node in selected:
            if node not in self._adj:
                raise NodeNotFound(node)
        sub = Graph(name=self.name)
        for node in selected:
            sub.add_node(node)
        for node in selected:
            for other in self._adj[node] & selected:
                sub.add_edge(node, other)
        return sub

    def edge_boundary(self, nodes: Iterable[Node]) -> list[Edge]:
        """Return the edges with exactly one endpoint in ``nodes``.

        This is the paper's :math:`c_C` edge set for undirected graphs.
        """
        selected = set(nodes)
        boundary = []
        for node in selected:
            adj = self._adj.get(node)
            if adj is None:
                raise NodeNotFound(node)
            for other in adj - selected:
                boundary.append((node, other))
        return boundary
