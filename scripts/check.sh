#!/usr/bin/env bash
# One-command correctness gate: custom lint pass (parallel, baseline-aware,
# with a machine-readable SARIF artifact), seed-determinism check on the
# fast pipelines, engine-vs-legacy identity smoke, observability overhead
# smoke (with a sample trace artifact), then the tier-1 test suite.
# Exits non-zero on the first failure so it can gate PRs.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro lint (REP001-REP607, 2 jobs) =="
python -m repro.devtools.lint src --jobs 2

echo "== repro lint baseline ratchet (no stale entries) =="
python -m repro.devtools.lint src --check-baseline

echo "== repro lint SARIF artifact (lint.sarif) =="
python -m repro.devtools.lint src --format sarif --output lint.sarif

echo "== interprocedural lint benchmark (warm cache, serial vs parallel) =="
python benchmarks/bench_lint.py --interproc --repeat 2

echo "== scale-soundness lint benchmark (REP601-606, warm cache) =="
python benchmarks/bench_lint.py --tier3 --repeat 2

echo "== determinism check (fast pipelines) =="
python -m repro.devtools.determinism --fast

echo "== engine scoring smoke (bit-identity vs legacy) =="
python benchmarks/bench_engine_scoring.py --smoke

echo "== parallel scoring smoke (Fig. 5 serial vs --jobs 2, CSV byte diff) =="
python benchmarks/bench_parallel_scoring.py --smoke --jobs 2 \
    --csv-dir bench-parallel-csv --output bench-parallel.json

echo "== observability overhead smoke (trace artifact: trace-sample.jsonl) =="
python benchmarks/bench_obs_overhead.py --smoke --trace-out trace-sample.jsonl

echo "== out-of-core smoke (1e6-edge freeze+score, RSS/time budgets) =="
python benchmarks/bench_parallel_scoring.py --scale 1000000 \
    --rss-budget-mb 900 --time-budget 120 --output BENCH_scale.json

echo "== service smoke (ephemeral port, query burst: 2xx + warm 304s, >=5x warm p50) =="
python benchmarks/bench_service_qps.py --smoke --time-budget 120 \
    --output BENCH_service.json

echo "== columnar scoring bench (10k groups, bitwise identity, >=3x) =="
python benchmarks/bench_columnar_scoring.py --output BENCH_columnar.json

echo "== bench trajectory gate (>20% regression vs benchmarks/BASELINES.json) =="
python scripts/bench_trajectory.py

echo "== tier-1 tests =="
python -m pytest -x -q
