"""Scaled-down synthetic builds of the paper's four corpora (+ Table II
reference crawl).

Each ``build_*`` function returns a :class:`~repro.data.Dataset` whose
construction mirrors the original corpus (see DESIGN.md "Substitutions"):

====================  =========================================================
``build_google_plus``  joined ego networks with shared circles (ego-Gplus)
``build_twitter``      sparser directed ego networks with "lists" (ego-Twitter)
``build_livejournal``  sparse planted-community graph (com-LiveJournal)
``build_orkut``        denser planted-community graph (com-Orkut)
``build_magno_reference``  BFS-style sparse power-law crawl (Magno et al.)
====================  =========================================================

Absolute sizes are laptop scale (10^3–10^4 vertices); the structural
*relations* the paper reports — density contrast between crawl styles,
log-normal vs power-law degree tails, circle/community score separation —
are preserved.  All builders are deterministic under ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.data.groups import GroupSet
from repro.graph.digraph import DiGraph
from repro.synth.community_graph import (
    CommunityGraphConfig,
    generate_community_graph,
)
from repro.synth.ego_generator import EgoCollectionConfig, generate_ego_collection

__all__ = [
    "build_google_plus",
    "build_twitter",
    "build_livejournal",
    "build_orkut",
    "build_magno_reference",
    "load_all_paper_datasets",
]

#: Default scale factors chosen so the full benchmark suite runs in minutes
#: on one core while keeping hundreds of groups per data set.
GOOGLE_PLUS_CONFIG = EgoCollectionConfig(
    num_egos=40,
    pool_size=3000,
    ego_size_median=220.0,
    ego_size_sigma=0.5,
    ego_size_max=600,
    membership_zipf_exponent=0.5,
    private_alter_fraction=0.45,
    isolated_ego_probability=0.06,
    edge_probability=0.28,
    local_edge_fraction=0.95,
    reciprocity=0.45,
    attribute_groups_min=10,
    attribute_groups_max=16,
    circles_per_ego_min=2,
    circles_per_ego_max=5,
    circle_size_min=8,
    circle_edge_boost=0.12,
    celebrity_fraction=0.15,
    shared_circle_inclusion=0.45,
    directed=True,
)

TWITTER_CONFIG = EgoCollectionConfig(
    num_egos=30,
    pool_size=2600,
    ego_size_median=200.0,
    ego_size_sigma=0.5,
    ego_size_max=500,
    membership_zipf_exponent=0.5,
    private_alter_fraction=0.5,
    isolated_ego_probability=0.08,
    edge_probability=0.08,
    reciprocity=0.25,
    attribute_groups_min=8,
    attribute_groups_max=14,
    circles_per_ego_min=1,
    circles_per_ego_max=3,
    circle_size_min=6,
    circle_edge_boost=0.04,
    celebrity_fraction=0.25,
    celebrity_zipf_exponent=1.8,
    shared_circle_inclusion=0.5,
    directed=True,
)

LIVEJOURNAL_CONFIG = CommunityGraphConfig(
    num_nodes=40000,
    num_communities=250,
    community_size_median=22.0,
    community_size_sigma=0.7,
    community_size_min=8,
    community_size_max=300,
    internal_degree_median=14.0,
    internal_degree_sigma=0.8,
    background_degree=14.0,
    background_weight_sigma=0.8,
)

ORKUT_CONFIG = CommunityGraphConfig(
    num_nodes=25000,
    num_communities=250,
    community_size_median=25.0,
    community_size_sigma=0.6,
    community_size_min=8,
    community_size_max=300,
    internal_degree_median=12.0,
    internal_degree_sigma=0.5,
    background_degree=30.0,
    background_weight_sigma=0.9,
)


def build_google_plus(seed: int = 7, *, config: EgoCollectionConfig | None = None) -> Dataset:
    """Synthetic ego-Gplus: joined ego networks with shared circles."""
    collection = generate_ego_collection(
        config or GOOGLE_PLUS_CONFIG, seed=seed, name="google_plus"
    )
    graph = collection.join()
    return Dataset(
        name="google_plus",
        graph=graph,
        groups=collection.circles(),
        structure="circles",
        ego_collection=collection,
    )


def build_twitter(seed: int = 11, *, config: EgoCollectionConfig | None = None) -> Dataset:
    """Synthetic ego-Twitter: sparser ego networks whose circles are lists."""
    collection = generate_ego_collection(
        config or TWITTER_CONFIG, seed=seed, name="twitter"
    )
    graph = collection.join()
    return Dataset(
        name="twitter",
        graph=graph,
        groups=collection.circles(),
        structure="circles",
        ego_collection=collection,
    )


def build_livejournal(
    seed: int = 13, *, config: CommunityGraphConfig | None = None
) -> Dataset:
    """Synthetic com-LiveJournal: sparse graph, well-separated communities."""
    graph, groups = generate_community_graph(
        config or LIVEJOURNAL_CONFIG, seed=seed, name="livejournal"
    )
    return Dataset(
        name="livejournal", graph=graph, groups=groups, structure="communities"
    )


def build_orkut(
    seed: int = 17, *, config: CommunityGraphConfig | None = None
) -> Dataset:
    """Synthetic com-Orkut: denser graph, less separated communities."""
    graph, groups = generate_community_graph(
        config or ORKUT_CONFIG, seed=seed, name="orkut"
    )
    return Dataset(name="orkut", graph=graph, groups=groups, structure="communities")


def build_magno_reference(
    seed: int = 19,
    *,
    num_nodes: int = 6000,
    zipf_exponent: float = 2.5,
    degree_floor: int = 3,
) -> Dataset:
    """Synthetic Magno et al. BFS-crawl reference (Table II contrast).

    A sparse directed configuration-model graph whose in/out degree
    sequences are truncated Zipf (power-law) samples — the degree regime of
    a breadth-first crawl of the full Google+ graph (Magno et al. report
    power-law degree tails, mean in-degree 16.4), as opposed to the dense
    log-normal ego-joined corpus.  Carries no groups.
    """
    from repro.nullmodel.configuration import directed_configuration_model

    rng = np.random.default_rng(seed)
    cap = max(num_nodes // 5, 10)

    def zipf_degrees() -> np.ndarray:
        # Pure truncated power law: zipf draws conditioned on >= the floor
        # (an additive offset would break the power-law form and the
        # Table II "power-law" classification with it).
        accepted: list[np.ndarray] = []
        count = 0
        while count < num_nodes:
            draws = rng.zipf(zipf_exponent, size=2 * num_nodes)
            draws = draws[draws >= degree_floor]
            accepted.append(draws)
            count += len(draws)
        degrees = np.concatenate(accepted)[:num_nodes]
        return np.minimum(degrees, cap)

    out_degrees = zipf_degrees()
    # A digraph needs equal in/out totals; with an infinite-variance tail,
    # patching two independent samples to equal sums would distort the
    # distribution badly.  Use the same multiset, randomly permuted — the
    # marginals stay exactly power-law and in/out are uncorrelated per
    # vertex (Magno et al. report alpha_in ~ alpha_out).
    in_degrees = rng.permutation(out_degrees)
    graph = directed_configuration_model(
        list(in_degrees), list(out_degrees), seed=int(rng.integers(2**32))
    )
    graph.name = "magno_bfs_crawl"
    return Dataset(
        name="magno_bfs_crawl",
        graph=graph,
        groups=GroupSet(name="magno_bfs_crawl"),
        structure="circles",
    )


def load_all_paper_datasets(base_seed: int = 0) -> dict[str, Dataset]:
    """Build the four Table III corpora with seeds offset from ``base_seed``."""
    return {
        "google_plus": build_google_plus(seed=base_seed + 7),
        "twitter": build_twitter(seed=base_seed + 11),
        "livejournal": build_livejournal(seed=base_seed + 13),
        "orkut": build_orkut(seed=base_seed + 17),
    }
