"""Vectorized batch computation of :class:`~repro.scoring.base.GroupStats`.

The legacy :func:`~repro.scoring.base.compute_group_stats` sweeps Python
set adjacency once per group; at hundreds of groups that interpreter
overhead dominates every Fig. 5/6 run.  :func:`batch_group_stats` computes
the same statistics for *all* groups at once with no per-group numpy
calls, choosing between two membership kernels over one flat member
layout:

* **pairs** — enumerate every ``(u, v)`` member pair per group
  (:math:`\\sum_C n_C^2` probes) and test adjacency in O(1) against the
  CSR's dense bitset (falling back to sorted ``src * n + dst`` edge-key
  binary search above the bitset memory cap).  Wins for small groups on
  high-degree graphs — the selective-sharing circles of the paper.
* **gather** — concatenate the members' CSR rows
  (:math:`\\sum_C \\sum_{v \\in C} d(v)` entries) and test each gathered
  ``(group, neighbour)`` entry against a sorted membership key table.
  Wins for groups whose size exceeds their members' degrees (e.g. the
  whole graph as one group).

``strategy="auto"`` picks whichever predicts fewer touched entries for
the batch.  The legacy per-group path stays in :mod:`repro.scoring.base`
as the correctness oracle; ``tests/engine/test_batch_stats.py`` asserts
both kernels are bit-identical to it on random directed and undirected
graphs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Literal

import numpy as np

from repro import obs
from repro.engine.context import AnalysisContext
from repro.exceptions import EmptyGroupError, NodeNotFound
from repro.obs import instruments
from repro.graph.csr import CSRGraph
from repro.scoring.base import GroupStats
from repro.scoring.columnar import GroupStatsBatch

Node = Hashable

Strategy = Literal["auto", "pairs", "gather"]

__all__ = ["batch_group_stats", "batch_group_stats_columns", "group_stats"]

#: Entry stream of one membership pass: per-entry owning member row,
#: boolean inside-the-group flag, and the kernel-specific payload needed
#: to recover the internal neighbour's member position.
_Entries = tuple[np.ndarray, np.ndarray, np.ndarray]


class _MemberTable:
    """Flat member layout shared by every orientation pass of one batch.

    ``ids`` concatenates the (deduplicated) member ids of all groups;
    ``member_group[j]`` is the group the ``j``-th member row belongs to.
    """

    __slots__ = (
        "n",
        "ids",
        "sizes",
        "member_group",
        "group_offsets",
        "total_members",
        "num_groups",
        "_sorted_keys",
        "_key_order",
        "_pair_offsets",
        "_pair_u",
        "_pair_v_member",
        "_pair_u_vertex",
        "_pair_v_vertex",
        "_pair_transpose",
    )

    def __init__(self, n: int, ids: np.ndarray, sizes: np.ndarray) -> None:
        self.n = n
        self.num_groups = len(sizes)
        self.sizes = sizes
        self.ids = ids
        self.total_members = int(sizes.sum())
        self.member_group = np.repeat(
            np.arange(self.num_groups, dtype=np.int64), sizes
        )
        self.group_offsets = np.concatenate(([0], np.cumsum(sizes)))
        self._sorted_keys: np.ndarray | None = None
        self._key_order: np.ndarray | None = None
        self._pair_offsets: np.ndarray | None = None
        self._pair_u: np.ndarray | None = None
        self._pair_v_member: np.ndarray | None = None
        self._pair_u_vertex: np.ndarray | None = None
        self._pair_v_vertex: np.ndarray | None = None
        self._pair_transpose: np.ndarray | None = None

    def member_positions(self) -> np.ndarray:
        """Position of each member row within its own group."""
        return (
            np.arange(self.total_members, dtype=np.int64)
            - self.group_offsets[self.member_group]
        )

    # -- pairs kernel --------------------------------------------------------

    def _ensure_pairs(self) -> None:
        """Enumerate all ordered member pairs of every group once."""
        if self._pair_u is not None:
            return
        # Member row j of a size-k group pairs with that group's k rows.
        k_of_member = self.sizes[self.member_group]
        total_pairs = int(k_of_member.sum())
        starts = self.group_offsets[self.member_group]
        offsets = np.concatenate(([0], np.cumsum(k_of_member[:-1])))
        self._pair_offsets = offsets
        self._pair_u = np.repeat(
            np.arange(self.total_members, dtype=np.int64), k_of_member
        )
        self._pair_v_member = np.arange(total_pairs, dtype=np.int64) + np.repeat(
            starts - offsets, k_of_member
        )
        self._pair_u_vertex = self.ids[self._pair_u]
        self._pair_v_vertex = self.ids[self._pair_v_member]

    def pair_transpose(self) -> np.ndarray:
        """Permutation mapping pair ``(u, v)`` to its mirror ``(v, u)``.

        Lets one directed out-probe answer the in-direction too:
        ``inside_in = inside_out[pair_transpose()]``.
        """
        if self._pair_transpose is None:
            self._ensure_pairs()
            assert self._pair_u is not None
            assert self._pair_v_member is not None
            assert self._pair_offsets is not None
            k_of_member = self.sizes[self.member_group]
            k_per_pair = np.repeat(k_of_member, k_of_member)
            starts_per_pair = np.repeat(
                self.group_offsets[self.member_group], k_of_member
            )
            pos_u = np.repeat(self.member_positions(), k_of_member)
            pos_v = self._pair_v_member - starts_per_pair
            # Pair t sits at (group pair base) + pos_u * k + pos_v; its
            # mirror swaps the two positions.  The base is the group's
            # first member's pair offset.
            group_pair_base = self._pair_offsets[starts_per_pair]
            self._pair_transpose = group_pair_base + pos_v * k_per_pair + pos_u
        return self._pair_transpose

    def pairs_probe(self, csr: CSRGraph) -> np.ndarray:
        """Boolean per-pair adjacency: is ``u -> v`` an edge of ``csr``?

        Uses the O(1) dense bitset when the graph fits the memory cap,
        else sorted edge-key binary search.  Self-pairs only hit on
        self-loops, matching legacy set-intersection semantics.  The
        mirrored ``v -> u`` answers come for free via
        :meth:`pair_transpose`.
        """
        self._ensure_pairs()
        assert self._pair_u_vertex is not None
        assert self._pair_v_vertex is not None
        u, v = self._pair_u_vertex, self._pair_v_vertex
        bits = csr.adjacency_bits()
        if bits is not None:
            return (bits[u, v >> 3] >> (v & 7).astype(np.uint8)) & 1 != 0
        edge_keys = csr.edge_keys()
        if edge_keys.size == 0:
            return np.zeros(len(u), dtype=bool)
        pair_keys = u * np.int64(self.n) + v
        position = np.searchsorted(edge_keys, pair_keys)
        position = np.minimum(position, edge_keys.size - 1)
        return edge_keys[position] == pair_keys

    def pairs_reduce(self, inside: np.ndarray) -> np.ndarray:
        """Per-member internal degrees from a per-pair inside flag."""
        assert self._pair_offsets is not None
        # Pair segments are member-contiguous and never empty (every
        # member pairs with its own group), so reduceat is safe.
        return np.add.reduceat(inside.astype(np.int64), self._pair_offsets)

    def pair_entries(self, inside: np.ndarray) -> _Entries:
        """Package a per-pair inside flag as an adjacency entry stream."""
        assert self._pair_u is not None and self._pair_v_member is not None
        return (self._pair_u, inside, self._pair_v_member)

    def pair_neighbor_rows(self, entries: _Entries) -> list[np.ndarray]:
        """Internal-neighbour member positions from a pairs entry stream."""
        pair_u, inside, pair_v_member = entries
        owners = pair_u[inside]
        positions = (
            pair_v_member - self.group_offsets[self.member_group[pair_u]]
        )[inside]
        # Pairs are generated owner-major with ascending v, so the stream
        # is already sorted by (owner, position) — split and done.
        splits = np.cumsum(np.bincount(owners, minlength=self.total_members))
        return np.split(positions, splits[:-1])

    # -- gather kernel -------------------------------------------------------

    def _membership_keys(self) -> tuple[np.ndarray, np.ndarray]:
        if self._sorted_keys is None:
            member_keys = self.member_group * np.int64(self.n) + self.ids
            self._key_order = np.argsort(member_keys)
            self._sorted_keys = member_keys[self._key_order]
        assert self._key_order is not None
        return self._sorted_keys, self._key_order

    def gather_inside(
        self, csr: CSRGraph, *, keep_entries: bool = False
    ) -> tuple[np.ndarray, _Entries | None]:
        """Per-member internal degrees by gathering the members' CSR rows.

        Every gathered ``(group, neighbour)`` entry is tested against the
        sorted ``group * n + vertex`` membership key table.
        """
        sorted_keys, _ = self._membership_keys()
        starts = csr.indptr[self.ids]
        counts = csr.indptr[self.ids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.zeros(self.total_members, dtype=np.int64), None
        offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            starts - offsets, counts
        )
        neighbors = csr.indices[flat]
        entry_member = np.repeat(
            np.arange(self.total_members, dtype=np.int64), counts
        )
        entry_keys = (
            np.repeat(self.member_group, counts) * np.int64(self.n) + neighbors
        )
        key_position = np.searchsorted(sorted_keys, entry_keys)
        key_position = np.minimum(key_position, self.total_members - 1)
        inside = sorted_keys[key_position] == entry_keys
        internal = np.bincount(
            entry_member, weights=inside, minlength=self.total_members
        ).astype(np.int64)
        entries: _Entries | None = None
        if keep_entries:
            entries = (entry_member, inside, key_position)
        return internal, entries

    def gather_neighbor_rows(self, entries: _Entries) -> list[np.ndarray]:
        """Internal-neighbour member positions from a gather entry stream."""
        entry_member, inside, key_position = entries
        _, key_order = self._membership_keys()
        # Align per-group positions with the sorted key table so a key hit
        # maps straight to the matched member's position.
        pos_sorted = self.member_positions()[key_order]
        owners = entry_member[inside]
        positions = pos_sorted[key_position[inside]]
        order = np.lexsort((positions, owners))
        positions = positions[order]
        owners = owners[order]
        splits = np.cumsum(np.bincount(owners, minlength=self.total_members))
        return np.split(positions, splits[:-1])

    # -- shared reductions ---------------------------------------------------

    def group_sum(self, per_member: np.ndarray) -> np.ndarray:
        """Reduce a per-member array to per-group totals.

        Group segments are contiguous and never empty (an empty group
        raises before the kernel runs), so reduceat is safe.
        """
        return np.add.reduceat(per_member, self.group_offsets[:-1])

    def empty_neighbor_rows(self) -> list[np.ndarray]:
        empty = np.empty(0, dtype=np.int64)
        return [empty] * self.total_members


def batch_group_stats(
    context: AnalysisContext,
    groups: Iterable[Iterable[Node]],
    *,
    graph_median_degree: float | None = None,
    include_internal_adjacency: bool = False,
    strategy: Strategy = "auto",
) -> list[GroupStats]:
    """Compute :class:`GroupStats` for every member iterable in ``groups``.

    Semantics match :func:`repro.scoring.base.compute_group_stats` exactly
    (same dedup, same error types, bit-identical counts and arrays); the
    whole batch shares one frozen context and one vectorized membership
    pass per orientation.  ``include_internal_adjacency`` additionally
    fills ``member_internal_neighbors`` (needed only by TPR).
    ``strategy`` selects the membership kernel; the default ``"auto"``
    compares the two kernels' predicted entry counts for the batch.
    """
    with obs.span("engine.score_batch"):
        return _batch_group_stats(
            context,
            groups,
            graph_median_degree=graph_median_degree,
            include_internal_adjacency=include_internal_adjacency,
            strategy=strategy,
        )


class _ColumnPass:
    """One membership pass's column arrays, shared by both assemblies.

    The struct-of-arrays core of the batch kernels: everything
    :func:`batch_group_stats` needs to assemble per-group objects and
    everything :func:`batch_group_stats_columns` packs verbatim into a
    :class:`~repro.scoring.columnar.GroupStatsBatch`.
    """

    __slots__ = (
        "member_tuples",
        "table",
        "degrees",
        "internal",
        "in_degrees",
        "out_degrees",
        "m_C_group",
        "boundary_group",
        "adjacency_rows",
    )

    def __init__(
        self,
        member_tuples: list[tuple[Node, ...]],
        table: _MemberTable,
        degrees: np.ndarray,
        internal: np.ndarray,
        in_degrees: np.ndarray,
        out_degrees: np.ndarray,
        m_C_group: np.ndarray,
        boundary_group: np.ndarray,
        adjacency_rows: list[np.ndarray] | None,
    ) -> None:
        self.member_tuples = member_tuples
        self.table = table
        self.degrees = degrees
        self.internal = internal
        self.in_degrees = in_degrees
        self.out_degrees = out_degrees
        self.m_C_group = m_C_group
        self.boundary_group = boundary_group
        self.adjacency_rows = adjacency_rows


def _batch_member_columns(
    context: AnalysisContext,
    groups: Iterable[Iterable[Node]],
    *,
    include_internal_adjacency: bool,
    strategy: Strategy,
) -> _ColumnPass | None:
    """Run one membership pass and return its column arrays.

    Returns ``None`` for an empty batch.  This is the struct-of-arrays
    core shared by the object assembly (:func:`batch_group_stats`) and
    the columnar one (:func:`batch_group_stats_columns`); the two only
    differ in how they package these arrays.
    """
    n = context.num_vertices

    member_tuples: list[tuple[Node, ...]] = []
    sizes_list: list[int] = []
    labels_flat: list[Node] = []
    for members in groups:
        member_tuple = tuple(dict.fromkeys(members))
        if not member_tuple:
            raise EmptyGroupError("cannot score an empty vertex group")
        member_tuples.append(member_tuple)
        sizes_list.append(len(member_tuple))
        labels_flat.extend(member_tuple)
    if not member_tuples:
        return None

    # Map every label of the batch in one pass; on failure, find the
    # offender for a precise error.
    index_of = context.index_of
    try:
        ids_list = [index_of[label] for label in labels_flat]
    except KeyError:
        for label in labels_flat:
            if label not in index_of:
                raise NodeNotFound(label) from None
        raise  # pragma: no cover - unreachable
    table = _MemberTable(
        n,
        np.asarray(ids_list, dtype=np.int64),
        np.asarray(sizes_list, dtype=np.int64),
    )
    if strategy == "auto":
        pair_entries = int((table.sizes * table.sizes).sum())
        gather_entries = int(context.degree_array[table.ids].sum())
        strategy = "pairs" if pair_entries <= gather_entries else "gather"
    use_pairs = strategy == "pairs"
    if obs.enabled():
        instruments.KERNEL_SELECTED.inc(label=strategy)
        instruments.GROUPS_SCORED.inc(len(member_tuples))
        instruments.GROUP_SIZE.observe_many(sizes_list)
        obs.add("groups", len(member_tuples))
        obs.add(f"kernel_{strategy}", 1)
    keep = include_internal_adjacency
    directed = context.is_directed

    entries: _Entries | None = None
    if directed:
        assert context.csr_out is not None and context.csr_in is not None
        if use_pairs:
            # One out-CSR probe pass answers both directions: mirror the
            # flags through the pair-transpose permutation for the
            # in-direction, OR them for the union adjacency.
            inside_out = table.pairs_probe(context.csr_out)
            inside_in = inside_out[table.pair_transpose()]
            internal_out = table.pairs_reduce(inside_out)
            internal_in = table.pairs_reduce(inside_in)
            if keep:
                entries = table.pair_entries(inside_out | inside_in)
        else:
            internal_out, _ = table.gather_inside(context.csr_out)
            internal_in, _ = table.gather_inside(context.csr_in)
            if keep:
                _, entries = table.gather_inside(context.csr, keep_entries=True)
        out_degrees = context.out_degree_array[table.ids]
        in_degrees = context.in_degree_array[table.ids]
        degrees = out_degrees + in_degrees
        internal = internal_out + internal_in
        m_C_group = table.group_sum(internal_out)
    else:
        if use_pairs:
            inside = table.pairs_probe(context.csr)
            internal = table.pairs_reduce(inside)
            if keep:
                entries = table.pair_entries(inside)
        else:
            internal, entries = table.gather_inside(
                context.csr, keep_entries=keep
            )
        degrees = context.csr.degree_array()[table.ids]
        m_C_group = table.group_sum(internal) // 2
        zeros = np.zeros(table.total_members, dtype=np.int64)
        in_degrees = zeros
        out_degrees = zeros
    boundary_group = table.group_sum(degrees) - table.group_sum(internal)

    adjacency_rows: list[np.ndarray] | None = None
    if include_internal_adjacency:
        if entries is None:
            adjacency_rows = table.empty_neighbor_rows()
        elif use_pairs:
            adjacency_rows = table.pair_neighbor_rows(entries)
        else:
            adjacency_rows = table.gather_neighbor_rows(entries)

    return _ColumnPass(
        member_tuples,
        table,
        degrees,
        internal,
        in_degrees,
        out_degrees,
        m_C_group,
        boundary_group,
        adjacency_rows,
    )


def _batch_group_stats(
    context: AnalysisContext,
    groups: Iterable[Iterable[Node]],
    *,
    graph_median_degree: float | None,
    include_internal_adjacency: bool,
    strategy: Strategy,
) -> list[GroupStats]:
    context = AnalysisContext.ensure(context)
    columns = _batch_member_columns(
        context,
        groups,
        include_internal_adjacency=include_internal_adjacency,
        strategy=strategy,
    )
    if columns is None:
        return []
    n = context.num_vertices
    m = context.num_edges
    directed = context.is_directed
    degrees = columns.degrees
    internal = columns.internal
    in_degrees = columns.in_degrees
    out_degrees = columns.out_degrees
    adjacency_rows = columns.adjacency_rows

    # Plain-int copies keep the assembly loop free of numpy scalar churn,
    # and the frozen-dataclass __init__ (13 object.__setattr__ calls per
    # group) is bypassed with one __dict__.update; GroupStats defines no
    # __post_init__ or __slots__, so the instances are indistinguishable.
    offsets = columns.table.group_offsets.tolist()
    m_C_list = columns.m_C_group.tolist()
    boundary_list = columns.boundary_group.tolist()
    new_stats = GroupStats.__new__
    results: list[GroupStats] = []
    for g, member_tuple in enumerate(columns.member_tuples):
        lo, hi = offsets[g], offsets[g + 1]
        internal_neighbors: tuple[np.ndarray, ...] | None = None
        if adjacency_rows is not None:
            internal_neighbors = tuple(adjacency_rows[lo:hi])
        stats = new_stats(GroupStats)
        stats.__dict__.update(
            members=member_tuple,
            n=n,
            m=m,
            n_C=hi - lo,
            m_C=m_C_list[g],
            c_C=boundary_list[g],
            directed=directed,
            member_degrees=degrees[lo:hi],
            member_internal_degrees=internal[lo:hi],
            member_in_degrees=in_degrees[lo:hi],
            member_out_degrees=out_degrees[lo:hi],
            graph_median_degree=graph_median_degree,
            member_internal_neighbors=internal_neighbors,
        )
        results.append(stats)
    return results


def batch_group_stats_columns(
    context: AnalysisContext,
    groups: Iterable[Iterable[Node]],
    *,
    graph_median_degree: float | None = None,
    include_internal_adjacency: bool = False,
    strategy: Strategy = "auto",
) -> GroupStatsBatch:
    """Compute a columnar :class:`GroupStatsBatch` for ``groups``.

    Run the same membership pass as :func:`batch_group_stats` and pack
    its column arrays directly — no per-group object is ever
    assembled.  Every field matches the object path bit for bit
    (``GroupStatsBatch.row(i)`` reconstructs the ``i``-th
    :class:`GroupStats` on demand); the columnar scoring kernels in
    :mod:`repro.scoring.columnar` consume the batch wholesale.
    """
    with obs.span("engine.score_batch"):
        context = AnalysisContext.ensure(context)
        columns = _batch_member_columns(
            context,
            groups,
            include_internal_adjacency=include_internal_adjacency,
            strategy=strategy,
        )
        if columns is None:
            return GroupStatsBatch.empty(
                n=context.num_vertices,
                m=context.num_edges,
                directed=context.is_directed,
                graph_median_degree=graph_median_degree,
                with_neighbors=include_internal_adjacency,
            )
        table = columns.table
        neighbors: tuple[np.ndarray, ...] | None = None
        if columns.adjacency_rows is not None:
            neighbors = tuple(columns.adjacency_rows)
        return GroupStatsBatch(
            n=context.num_vertices,
            m=context.num_edges,
            directed=context.is_directed,
            graph_median_degree=graph_median_degree,
            members=tuple(columns.member_tuples),
            n_C=table.sizes,
            m_C=columns.m_C_group,
            c_C=columns.boundary_group,
            group_offsets=table.group_offsets,
            member_degrees=columns.degrees,
            member_internal_degrees=columns.internal,
            member_in_degrees=columns.in_degrees,
            member_out_degrees=columns.out_degrees,
            member_internal_neighbors=neighbors,
        )


def group_stats(
    context: AnalysisContext,
    members: Iterable[Node],
    *,
    graph_median_degree: float | None = None,
    include_internal_adjacency: bool = False,
) -> GroupStats:
    """Single-group convenience wrapper around :func:`batch_group_stats`."""
    return batch_group_stats(
        context,
        [members],
        graph_median_degree=graph_median_degree,
        include_internal_adjacency=include_internal_adjacency,
    )[0]
