"""Fang-et-al. circle classification tests."""

import pytest

from repro.analysis.circle_types import circle_features, classify_circles
from repro.data.groups import Circle, GroupSet
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph


def _community_circle_graph():
    """Owner 0 with a dense, fully reciprocated circle {1, 2, 3}."""
    graph = DiGraph()
    for member in (1, 2, 3):
        graph.add_edge(0, member)
        graph.add_edge(member, 0)
    for u in (1, 2, 3):
        for v in (1, 2, 3):
            if u != v:
                graph.add_edge(u, v)
    return graph


def _celebrity_circle_graph():
    """Owner 0 follows stars {1, 2, 3} who don't follow back or connect,
    but have huge in-degree from fans."""
    graph = DiGraph()
    for star in (1, 2, 3):
        graph.add_edge(0, star)
        for fan in range(10, 40):
            graph.add_edge(fan, star)
    return graph


class TestCircleFeatures:
    def test_community_circle_features(self):
        graph = _community_circle_graph()
        circle = Circle(name="friends", members=frozenset({1, 2, 3}), owner=0)
        features = circle_features(graph, circle)
        assert features.internal_density == 1.0
        assert features.owner_reciprocity == 1.0
        assert features.size == 3

    def test_celebrity_circle_features(self):
        graph = _celebrity_circle_graph()
        circle = Circle(name="stars", members=frozenset({1, 2, 3}), owner=0)
        features = circle_features(graph, circle)
        assert features.internal_density == 0.0
        assert features.owner_reciprocity == 0.0
        assert features.mean_member_in_degree > 20

    def test_missing_members_ignored(self):
        graph = _community_circle_graph()
        circle = Circle(name="c", members=frozenset({1, 2, 999}), owner=0)
        assert circle_features(graph, circle).size == 2

    def test_all_members_missing_raises(self):
        graph = _community_circle_graph()
        circle = Circle(name="c", members=frozenset({777}), owner=0)
        with pytest.raises(ValueError):
            circle_features(graph, circle)

    def test_undirected_graph_supported(self):
        graph = Graph([(0, 1), (0, 2), (1, 2)])
        circle = Circle(name="c", members=frozenset({1, 2}), owner=0)
        features = circle_features(graph, circle)
        assert features.internal_density == 1.0
        assert features.owner_reciprocity == 1.0

    def test_absent_owner_zero_reciprocity(self):
        graph = Graph([(1, 2)])
        circle = Circle(name="c", members=frozenset({1, 2}), owner=None)
        assert circle_features(graph, circle).owner_reciprocity == 0.0

    def test_as_row_keys(self):
        graph = _community_circle_graph()
        circle = Circle(name="friends", members=frozenset({1, 2, 3}), owner=0)
        row = circle_features(graph, circle).as_row()
        assert set(row) == {
            "circle",
            "size",
            "internal_density",
            "owner_reciprocity",
            "mean_in_degree",
        }


class TestClassifyCircles:
    def _mixed_graph_and_circles(self):
        graph = DiGraph()
        circles = []
        # Three community circles: dense reciprocated blocks.
        for block in range(3):
            owner = 1000 + block
            members = [block * 10 + i for i in range(1, 6)]
            for member in members:
                graph.add_edge(owner, member)
                graph.add_edge(member, owner)
            for u in members:
                for v in members:
                    if u != v:
                        graph.add_edge(u, v)
            circles.append(
                Circle(
                    name=f"community{block}",
                    members=frozenset(members),
                    owner=owner,
                )
            )
        # Two celebrity circles: disconnected stars with fan mass.
        for block in range(2):
            owner = 2000 + block
            stars = [500 + block * 10 + i for i in range(3)]
            for star in stars:
                graph.add_edge(owner, star)
                for fan in range(3000 + 100 * block, 3040 + 100 * block):
                    graph.add_edge(fan, star)
            circles.append(
                Circle(
                    name=f"celebrity{block}",
                    members=frozenset(stars),
                    owner=owner,
                )
            )
        return graph, GroupSet(groups=circles)

    def test_threshold_method(self):
        graph, circles = self._mixed_graph_and_circles()
        classification = classify_circles(graph, circles, method="threshold")
        assert set(classification.of_kind("celebrity")) == {
            "celebrity0",
            "celebrity1",
        }
        assert len(classification.of_kind("community")) == 3

    def test_kmeans_method(self):
        graph, circles = self._mixed_graph_and_circles()
        classification = classify_circles(graph, circles, method="kmeans", seed=0)
        assert set(classification.of_kind("celebrity")) == {
            "celebrity0",
            "celebrity1",
        }

    def test_unknown_method_rejected(self):
        graph, circles = self._mixed_graph_and_circles()
        with pytest.raises(ValueError):
            classify_circles(graph, circles, method="bogus")

    def test_single_circle_defaults_to_community(self):
        graph = _community_circle_graph()
        circles = [Circle(name="only", members=frozenset({1, 2, 3}), owner=0)]
        classification = classify_circles(graph, circles, method="kmeans")
        assert classification.labels == {"only": "community"}

    def test_summary_counts(self):
        graph, circles = self._mixed_graph_and_circles()
        summary = classify_circles(graph, circles, method="threshold").summary()
        assert summary["community_count"] == 3
        assert summary["celebrity_count"] == 2
        assert summary["celebrity_mean_in_degree"] > summary[
            "community_mean_in_degree"
        ]

    def test_recovers_generator_ground_truth(self, small_circles_dataset):
        """The synthetic generator labels its celebrity circles; the
        classifier should recover most of them by popularity."""
        truth = {
            group.name
            for group in small_circles_dataset.groups
            if group.name.endswith("/celebrities")
        }
        if not truth:
            pytest.skip("no celebrity circles in this seed")
        classification = classify_circles(
            small_circles_dataset.graph,
            small_circles_dataset.groups,
            method="kmeans",
            seed=0,
        )
        predicted = set(classification.of_kind("celebrity"))
        recovered = len(truth & predicted) / len(truth)
        assert recovered >= 0.5
