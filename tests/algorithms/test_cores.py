"""k-core decomposition tests against networkx."""

import networkx as nx
import pytest

from repro.algorithms.cores import core_numbers, k_core
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph


def _from_nx(oracle: nx.Graph) -> Graph:
    graph = Graph()
    graph.add_nodes_from(oracle.nodes)
    graph.add_edges_from(oracle.edges)
    return graph


class TestCoreNumbers:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        oracle = nx.gnp_random_graph(60, 0.08, seed=seed)
        assert core_numbers(_from_nx(oracle)) == nx.core_number(oracle)

    def test_clique_core(self):
        assert set(core_numbers(_from_nx(nx.complete_graph(5))).values()) == {4}

    def test_path_graph(self):
        cores = core_numbers(_from_nx(nx.path_graph(5)))
        assert set(cores.values()) == {1}

    def test_isolated_vertex_core_zero(self):
        graph = Graph([(1, 2)])
        graph.add_node(3)
        assert core_numbers(graph)[3] == 0

    def test_directed_uses_total_degree(self):
        graph = DiGraph([(1, 2), (2, 3), (3, 1)])
        assert set(core_numbers(graph).values()) == {2}

    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}


class TestKCore:
    def test_k_core_of_two_cliques(self, two_cliques_graph):
        # Both 4-cliques form the 3-core; the bridge does not change that.
        assert k_core(two_cliques_graph, 3) == set(range(8))
        assert k_core(two_cliques_graph, 4) == set()

    def test_k_core_matches_networkx(self):
        oracle = nx.gnp_random_graph(50, 0.15, seed=4)
        graph = _from_nx(oracle)
        for k in (1, 2, 3):
            assert k_core(graph, k) == set(nx.k_core(oracle, k).nodes)

    def test_k_zero_is_everything(self, triangle_graph):
        assert k_core(triangle_graph, 0) == {1, 2, 3, 4}
