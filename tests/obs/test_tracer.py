"""Tracer tests: span nesting, exception unwinding, counters, export."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.tracer import Tracer


class TestNesting:
    def test_spans_nest_under_the_open_span(self):
        tracer = obs.enable(name="nest")
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("sibling"):
                pass
        obs.disable()

        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner", "sibling"]
        assert outer.children[0].children == []

    def test_sequential_roots_stay_separate(self):
        tracer = obs.enable(name="roots")
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        obs.disable()
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_records_carry_slash_paths_and_depth(self):
        tracer = obs.enable(name="paths")
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
        obs.disable()

        spans = [r for r in tracer.records() if r["type"] == "span"]
        assert [(s["path"], s["depth"]) for s in spans] == [
            ("a", 0),
            ("a/b", 1),
            ("a/b/c", 2),
        ]
        assert all(s["status"] == "ok" for s in spans)
        assert all(s["wall_seconds"] >= 0 for s in spans)

    def test_counters_accumulate_on_innermost_span(self):
        tracer = obs.enable(name="counters")
        with obs.span("outer"):
            obs.add("outer_hits")
            with obs.span("inner"):
                obs.add("groups", 3)
                obs.add("groups", 2)
        obs.disable()

        outer = tracer.roots[0]
        assert outer.counters == {"outer_hits": 1}
        assert outer.children[0].counters == {"groups": 5}


class TestExceptionUnwinding:
    def test_exception_marks_status_and_propagates(self):
        tracer = obs.enable(name="boom")
        with pytest.raises(ValueError, match="boom"):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise ValueError("boom")
        obs.disable()

        outer = tracer.roots[0]
        inner = outer.children[0]
        assert inner.status == "error:ValueError"
        assert outer.status == "error:ValueError"
        assert inner.wall_seconds is not None
        assert outer.wall_seconds is not None

    def test_stack_unwinds_cleanly_after_exception(self):
        tracer = obs.enable(name="recover")
        with pytest.raises(RuntimeError):
            with obs.span("failed"):
                raise RuntimeError
        with obs.span("after"):
            pass
        obs.disable()

        # The post-exception span is a new root, not a stale child.
        assert [root.name for root in tracer.roots] == ["failed", "after"]
        assert tracer.current() is None

    def test_error_status_shows_in_text_rendering(self):
        tracer = obs.enable(name="text")
        with pytest.raises(KeyError):
            with obs.span("lookup"):
                raise KeyError("missing")
        obs.disable()
        assert "error:KeyError" in tracer.render_text()


class TestExport:
    def test_jsonl_order_header_spans_metrics(self, tmp_path):
        tracer = obs.enable(name="export")
        with obs.span("stage"):
            obs.add("items", 4)
        obs.disable()

        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]

        assert records[0] == {"type": "trace", "name": "export", "version": 1}
        assert records[1]["type"] == "span"
        assert records[1]["counters"] == {"items": 4}
        assert records[-1]["type"] == "metrics"
        # sort_keys makes each line reproducible
        assert lines[0] == json.dumps(records[0], sort_keys=True)

    def test_render_text_lists_manifest_count(self):
        tracer = obs.enable(name="manifests")
        with obs.span("work"):
            obs.record_manifest(obs.capture_manifest("unit-test"))
        obs.disable()
        text = tracer.render_text()
        assert text.startswith("trace: manifests\n")
        assert "manifests: 1" in text


class TestDisabledPath:
    def test_disabled_span_is_shared_noop(self):
        first = obs.span("anything")
        second = obs.span("else")
        assert first is second  # one shared object — no allocation when off

    def test_disabled_add_and_manifest_do_nothing(self):
        obs.add("ignored", 7)
        obs.record_manifest(obs.capture_manifest("ignored"))
        assert obs.current_tracer() is None

    def test_enable_disable_roundtrip_returns_tracer(self):
        tracer = obs.enable(name="cycle")
        assert obs.enabled()
        assert obs.current_tracer() is tracer
        assert obs.disable() is tracer
        assert not obs.enabled()

    def test_memory_tracing_records_peaks(self):
        tracer = obs.enable(name="mem", memory=True)
        with obs.span("alloc"):
            _payload = [bytes(1024) for _ in range(64)]
            with obs.span("child"):
                _more = bytes(32_768)
        obs.disable()

        parent = tracer.roots[0]
        child = parent.children[0]
        assert parent.memory_peak_bytes is not None
        assert child.memory_peak_bytes is not None
        # A parent's peak always covers its children's.
        assert parent.memory_peak_bytes >= child.memory_peak_bytes

    def test_plain_tracer_usable_without_global_switch(self):
        tracer = Tracer("standalone")
        with tracer.span("s"):
            tracer.add("k", 2)
        assert tracer.roots[0].counters == {"k": 2}
