"""Random-graph generator tests."""

import numpy as np
import pytest

from repro.algorithms.degrees import degree_sequence
from repro.algorithms.traversal import is_connected
from repro.algorithms.triangles import average_clustering
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.synth.random_graphs import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    watts_strogatz_graph,
)


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        graph = erdos_renyi_graph(200, 0.05, seed=0)
        expected = 0.05 * 200 * 199 / 2
        assert graph.number_of_edges() == pytest.approx(expected, rel=0.2)

    def test_directed_variant(self):
        graph = erdos_renyi_graph(100, 0.05, directed=True, seed=1)
        assert isinstance(graph, DiGraph)
        expected = 0.05 * 100 * 99
        assert graph.number_of_edges() == pytest.approx(expected, rel=0.25)

    def test_no_self_loops_or_duplicates(self):
        graph = erdos_renyi_graph(80, 0.2, seed=2)
        edges = list(graph.edges)
        assert all(u != v for u, v in edges)
        assert len({frozenset(e) for e in edges}) == len(edges)

    def test_p_zero_and_one(self):
        empty = erdos_renyi_graph(10, 0.0, seed=0)
        assert empty.number_of_edges() == 0
        complete = erdos_renyi_graph(10, 1.0, seed=0)
        assert complete.number_of_edges() == 45

    def test_deterministic(self):
        a = erdos_renyi_graph(50, 0.1, seed=9)
        b = erdos_renyi_graph(50, 0.1, seed=9)
        assert set(map(frozenset, a.edges)) == set(map(frozenset, b.edges))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(-1, 0.5)
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 1.5)

    def test_unranking_covers_all_pairs(self):
        complete = erdos_renyi_graph(7, 1.0, seed=0)
        assert {frozenset(e) for e in complete.edges} == {
            frozenset((u, v)) for u in range(7) for v in range(u + 1, 7)
        }


class TestBarabasiAlbert:
    def test_edge_count(self):
        m = 3
        graph = barabasi_albert_graph(100, m, seed=0)
        seed_edges = (m + 1) * m // 2
        assert graph.number_of_edges() == seed_edges + m * (100 - m - 1)

    def test_connected(self):
        assert is_connected(barabasi_albert_graph(120, 2, seed=1))

    def test_heavy_tail(self):
        graph = barabasi_albert_graph(800, 2, seed=2)
        degrees = degree_sequence(graph)
        assert degrees.max() > 6 * np.median(degrees)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(10, 0)
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, 5)


class TestWattsStrogatz:
    def test_lattice_at_p_zero(self):
        graph = watts_strogatz_graph(30, 2, 0.0, seed=0)
        assert graph.number_of_edges() == 30 * 2
        assert all(graph.degree[v] == 4 for v in graph)

    def test_rewiring_preserves_edge_count(self):
        graph = watts_strogatz_graph(60, 3, 0.3, seed=1)
        assert graph.number_of_edges() == 60 * 3

    def test_small_world_regime(self):
        """Moderate rewiring keeps clustering well above the ER level."""
        lattice = watts_strogatz_graph(200, 3, 0.05, seed=2)
        random = erdos_renyi_graph(200, 6 / 199, seed=2)
        assert average_clustering(lattice) > 3 * max(
            average_clustering(random), 0.01
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 5, 0.1)
        with pytest.raises(ValueError):
            watts_strogatz_graph(30, 2, 1.5)
        with pytest.raises(ValueError):
            watts_strogatz_graph(30, 0, 0.5)
