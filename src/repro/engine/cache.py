"""On-disk content-addressed cache for scoring and sampling results.

Re-running ``repro score`` or ``repro compare`` recomputes everything the
previous invocation already computed — yet the inputs are fully
content-addressable: a frozen context has a CSR fingerprint
(:func:`repro.obs.manifest.fingerprint_context`), scoring functions are
small value objects, and sampling is pinned by ``(sampler, seed, sizes)``.
:class:`ResultCache` keys each result on a SHA-256 over exactly those
parts and stores the payload as an ``.npz`` under a cache directory, so a
warm second run performs **zero kernel invocations** and emits identical
output.

Keying rules:

* any graph change changes the CSR fingerprint and misses;
* any change to a function's configuration (class or scalar state)
  changes its token and misses;
* functions carrying non-scalar state (e.g. a sampled-Modularity
  ensemble) have no stable token — such batches are never cached;
* unseeded sampling (``seed=None``) is never cached (not replayable).

Corrupt or unreadable entries are evicted on access and recounted as
misses — a damaged cache degrades to recomputation, never to wrong
results.  Hit/miss/eviction counts land in ``cache.*`` metrics and, when
nonzero, in run manifests.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from collections.abc import Hashable, Sequence
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.obs import instruments
from repro.obs.manifest import fingerprint_context

if TYPE_CHECKING:  # pragma: no cover - type-only imports (cycle-free)
    from repro.engine.context import AnalysisContext
    from repro.scoring.base import ScoringFunction

Node = Hashable

__all__ = ["ResultCache", "function_tokens", "query_key"]

#: Bump when the payload layout or key schema changes: old entries then
#: miss instead of deserializing wrongly.  v2: context fingerprints went
#: chunk-wise and identity-aware (repro.obs.manifest.fingerprint_context),
#: so keys minted before the out-of-core substrate must not collide.
_SCHEMA = "v2"

_SCALARS = (type(None), bool, int, float, str)


def _function_state(function: "ScoringFunction") -> dict[str, object] | None:
    state = getattr(function, "__dict__", None)
    if state is None:
        slots = getattr(type(function), "__slots__", ())
        state = {
            name: getattr(function, name)
            for name in slots
            if hasattr(function, name)
        }
    return dict(state)


def function_tokens(
    functions: Sequence["ScoringFunction"],
) -> list[dict[str, object]] | None:
    """Stable cache tokens for a function list, or ``None`` if impossible.

    A token pins the function's class and its scalar configuration.  Any
    function carrying non-scalar state (a null-model ensemble, a closure)
    cannot be tokenized — the whole batch is then uncacheable *and*
    treated as parallel-unsafe, since the same non-scalar state could not
    be shipped to workers faithfully either.
    """
    tokens: list[dict[str, object]] = []
    for function in functions:
        state = _function_state(function)
        if state is None:
            return None
        for value in state.values():
            if not isinstance(value, _SCALARS):
                return None
        tokens.append(
            {
                "class": type(function).__qualname__,
                "name": getattr(function, "name", type(function).__name__),
                "state": {key: state[key] for key in sorted(state)},
            }
        )
    return tokens


def _digest(parts: dict[str, object]) -> str:
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def query_key(
    context: "AnalysisContext",
    *,
    tokens: list[dict[str, object]],
    group_names: Sequence[str],
    id_lists: Sequence[np.ndarray],
    include_internal_adjacency: bool,
) -> str:
    """Content address of one score query over a frozen context.

    The single derivation shared by :meth:`ResultCache.score_groups_key`
    (on-disk cache entries) and the service layer's ETags
    (:mod:`repro.service`): a query is the CSR fingerprint, the scoring
    functions' configuration tokens, the named group vertex-id sets, and
    the TPR/adjacency flag.  Two callers asking the same question about
    the same frozen bytes get the same key — which is what makes a
    ``repro score`` run and an HTTP request share one cache entry and
    one ETag universe.
    """
    groups = hashlib.sha256()
    for name, ids in zip(group_names, id_lists):
        groups.update(repr(name).encode("utf-8"))
        groups.update(np.sort(np.asarray(ids, dtype=np.int64)).tobytes())
    return _digest(
        {
            "schema": _SCHEMA,
            "kind": "score_groups",
            "fingerprint": fingerprint_context(context),
            "functions": tokens,
            "groups": groups.hexdigest(),
            "tpr": bool(include_internal_adjacency),
        }
    )


class ResultCache:
    """Content-addressed ``.npz`` store under one cache directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @classmethod
    def resolve(
        cls, cache: "ResultCache | str | Path | bool | None"
    ) -> "ResultCache | None":
        """Normalize a user-facing cache argument.

        ``False`` disables caching outright (the ``--no-cache`` flag);
        an instance passes through; a path opens a cache there; ``None``
        consults ``REPRO_CACHE_DIR`` and stays disabled if unset.
        """
        if cache is False or cache is True:
            return None
        if cache is None:
            env = os.environ.get("REPRO_CACHE_DIR", "").strip()
            return cls(env) if env else None
        if isinstance(cache, ResultCache):
            return cache
        return cls(cache)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    # -- keys ----------------------------------------------------------------

    def score_groups_key(
        self,
        context: "AnalysisContext",
        *,
        tokens: list[dict[str, object]],
        group_names: Sequence[str],
        id_lists: Sequence[np.ndarray],
        include_internal_adjacency: bool,
    ) -> str:
        """Key for one ``score_groups`` batch over a frozen context.

        Delegates to the shared :func:`query_key` derivation so on-disk
        entries and service ETags can never drift apart.
        """
        return query_key(
            context,
            tokens=tokens,
            group_names=group_names,
            id_lists=id_lists,
            include_internal_adjacency=include_internal_adjacency,
        )

    def matched_sets_key(
        self,
        context: "AnalysisContext",
        *,
        sampler: str,
        seed: int,
        sizes: Sequence[int],
    ) -> str:
        """Key for one seeded matched-set draw over a frozen context."""
        return _digest(
            {
                "schema": _SCHEMA,
                "kind": "matched_sets",
                "fingerprint": fingerprint_context(context),
                "sampler": sampler,
                "seed": int(seed),
                "sizes": [int(size) for size in sizes],
            }
        )

    # -- payload IO ----------------------------------------------------------

    def _load(self, key: str, kind: str) -> dict[str, np.ndarray] | None:
        path = self._path(key)
        try:
            with np.load(path, allow_pickle=False) as payload:
                return {name: payload[name] for name in payload.files}
        except FileNotFoundError:
            instruments.CACHE_MISSES.inc(label=kind)
            return None
        except (zipfile.BadZipFile, OSError, ValueError, KeyError):
            # Damaged entry: evict and recompute rather than trust it.
            instruments.CACHE_EVICTIONS.inc(label=kind)
            instruments.CACHE_MISSES.inc(label=kind)
            try:
                path.unlink()
            except OSError:  # pragma: no cover - unlink race
                pass
            return None

    def _store(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        path = self._path(key)
        scratch = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(scratch, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(scratch, path)
        except OSError:  # pragma: no cover - full/readonly cache dir
            scratch.unlink(missing_ok=True)

    def load_score_table(
        self, key: str
    ) -> tuple[list[str], list[int], dict[str, np.ndarray]] | None:
        """Load a cached score batch as ``(names, sizes, columns)``."""
        payload = self._load(key, "score")
        if payload is None:
            return None
        try:
            functions = [str(name) for name in payload["functions"]]
            names = [str(name) for name in payload["names"]]
            sizes = [int(size) for size in payload["sizes"]]
            columns = {
                name: np.asarray(payload[f"col_{i}"], dtype=np.float64)
                for i, name in enumerate(functions)
            }
        except KeyError:
            instruments.CACHE_EVICTIONS.inc(label="score")
            instruments.CACHE_MISSES.inc(label="score")
            self._path(key).unlink(missing_ok=True)
            return None
        instruments.CACHE_HITS.inc(label="score")
        return names, sizes, columns

    def store_score_table(
        self,
        key: str,
        names: Sequence[str],
        sizes: Sequence[int],
        columns: dict[str, np.ndarray],
    ) -> None:
        """Persist one score batch under ``key``."""
        arrays: dict[str, np.ndarray] = {
            "functions": np.asarray(list(columns), dtype=np.str_),
            "names": np.asarray(list(names), dtype=np.str_),
            "sizes": np.asarray(list(sizes), dtype=np.int64),
        }
        for i, values in enumerate(columns.values()):
            arrays[f"col_{i}"] = np.asarray(values, dtype=np.float64)
        self._store(key, arrays)

    def load_id_sets(self, key: str) -> list[np.ndarray] | None:
        """Load cached matched sets as per-set vertex-id arrays."""
        payload = self._load(key, "sets")
        if payload is None:
            return None
        try:
            values = np.asarray(payload["values"], dtype=np.int64)
            offsets = np.asarray(payload["offsets"], dtype=np.int64)
        except KeyError:
            instruments.CACHE_EVICTIONS.inc(label="sets")
            instruments.CACHE_MISSES.inc(label="sets")
            self._path(key).unlink(missing_ok=True)
            return None
        instruments.CACHE_HITS.inc(label="sets")
        return [
            values[offsets[i] : offsets[i + 1]]
            for i in range(len(offsets) - 1)
        ]

    def store_id_sets(
        self, key: str, id_lists: Sequence[np.ndarray]
    ) -> None:
        """Persist matched sets (vertex-id arrays) under ``key``."""
        offsets = np.zeros(len(id_lists) + 1, dtype=np.int64)
        for i, ids in enumerate(id_lists):
            offsets[i + 1] = offsets[i] + len(ids)
        values = (
            np.concatenate([np.asarray(ids, dtype=np.int64) for ids in id_lists])
            if id_lists
            else np.zeros(0, dtype=np.int64)
        )
        self._store(key, {"values": values, "offsets": offsets})

    def __repr__(self) -> str:
        return f"<ResultCache root={str(self.root)!r}>"
