"""Correctness tooling for the repro codebase.

Three layers keep the reproduction's headline numbers trustworthy as the
codebase grows:

* :mod:`repro.devtools.lint` — a custom AST lint pass with repo-specific
  rules (seeded randomness, graph-substrate encapsulation, no
  mutate-while-iterate, no float equality in scoring, ``__all__``
  discipline, no broad excepts).  Runnable as
  ``python -m repro.devtools.lint src/`` or ``repro lint``.
* :mod:`repro.devtools.invariants` — runtime structural validation of
  :class:`~repro.graph.Graph` / :class:`~repro.graph.DiGraph` /
  :class:`~repro.graph.CSRGraph`, with an opt-in
  ``REPRO_CHECK_INVARIANTS=1`` mode that post-checks every mutating
  substrate operation.
* :mod:`repro.devtools.determinism` — runs registered stochastic
  pipelines twice under the same seed and diffs canonical serializations,
  catching order-dependent iteration and unseeded randomness at runtime.

The library proper never imports :mod:`repro.devtools` (except for the
lazy, opt-in invariant installation); the tooling depends on the library,
not the other way around.
"""

from __future__ import annotations

__all__ = ["lint", "invariants", "determinism"]
