"""Vertex-group data model tests."""

import pytest

from repro.data.groups import Circle, Community, GroupSet, VertexGroup
from repro.exceptions import EmptyGroupError


class TestVertexGroup:
    def test_basic_protocols(self):
        group = VertexGroup(name="g", members=frozenset({1, 2, 3}))
        assert len(group) == 3
        assert 2 in group
        assert set(group) == {1, 2, 3}

    def test_members_coerced_to_frozenset(self):
        group = VertexGroup(name="g", members={1, 2})  # type: ignore[arg-type]
        assert isinstance(group.members, frozenset)

    def test_empty_rejected(self):
        with pytest.raises(EmptyGroupError):
            VertexGroup(name="empty", members=frozenset())

    def test_overlap_and_jaccard(self):
        a = VertexGroup(name="a", members=frozenset({1, 2, 3}))
        b = VertexGroup(name="b", members=frozenset({2, 3, 4}))
        assert a.overlap(b) == frozenset({2, 3})
        assert a.jaccard(b) == pytest.approx(2 / 4)

    def test_jaccard_disjoint(self):
        a = VertexGroup(name="a", members=frozenset({1}))
        b = VertexGroup(name="b", members=frozenset({2}))
        assert a.jaccard(b) == 0.0

    def test_kinds(self):
        assert Circle(name="c", members=frozenset({1}), owner=9).kind == "circle"
        assert Community(name="m", members=frozenset({1})).kind == "community"
        assert VertexGroup(name="g", members=frozenset({1})).kind == "group"

    def test_circle_owner(self):
        circle = Circle(name="c", members=frozenset({1, 2}), owner=42)
        assert circle.owner == 42


class TestGroupSet:
    def _sample(self) -> GroupSet:
        return GroupSet(
            groups=[
                Community(name="a", members=frozenset(range(10))),
                Community(name="b", members=frozenset(range(4))),
                Community(name="c", members=frozenset(range(7))),
            ],
            name="sample",
        )

    def test_sequence_protocols(self):
        groups = self._sample()
        assert len(groups) == 3
        assert groups[1].name == "b"
        assert [g.name for g in groups] == ["a", "b", "c"]

    def test_duplicate_names_rejected_at_init(self):
        with pytest.raises(ValueError):
            GroupSet(
                groups=[
                    Community(name="x", members=frozenset({1})),
                    Community(name="x", members=frozenset({2})),
                ]
            )

    def test_add_enforces_uniqueness(self):
        groups = self._sample()
        with pytest.raises(ValueError):
            groups.add(Community(name="a", members=frozenset({1})))
        groups.add(Community(name="d", members=frozenset({1})))
        assert len(groups) == 4

    def test_sizes(self):
        assert self._sample().sizes() == [10, 4, 7]

    def test_filter_by_size(self):
        filtered = self._sample().filter_by_size(minimum=5)
        assert [g.name for g in filtered] == ["a", "c"]
        bounded = self._sample().filter_by_size(minimum=1, maximum=6)
        assert [g.name for g in bounded] == ["b"]

    def test_top_k(self):
        top = self._sample().top_k(2)
        assert [g.name for g in top] == ["a", "c"]

    def test_top_k_tie_break_by_name(self):
        groups = GroupSet(
            groups=[
                Community(name="z", members=frozenset({1, 2})),
                Community(name="a", members=frozenset({3, 4})),
            ]
        )
        assert [g.name for g in groups.top_k(1)] == ["a"]

    def test_restrict_to_drops_and_intersects(self):
        restricted = self._sample().restrict_to(range(5))
        by_name = {g.name: g for g in restricted}
        assert set(by_name) == {"a", "b", "c"}
        assert by_name["a"].members == frozenset(range(5))
        fully = self._sample().restrict_to([100])
        assert len(fully) == 0

    def test_restrict_preserves_circle_owner(self):
        groups = GroupSet(
            groups=[Circle(name="c", members=frozenset({1, 2}), owner=9)]
        )
        restricted = groups.restrict_to([1])
        assert isinstance(restricted[0], Circle)
        assert restricted[0].owner == 9

    def test_member_universe(self):
        assert self._sample().member_universe() == frozenset(range(10))
