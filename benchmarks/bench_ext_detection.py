"""Extension E3 — detected vs declared: can an algorithm find circles?

The paper shows circles *score* differently from communities; the sharper
operational question is whether a community detector run on the same graph
recovers them.  Louvain on the joined Google+ corpus recovers the **ego
networks** (the actual modular structure of the crawl) an order of
magnitude better than the circles — circles are sub-ego facets, contained
inside detected blocks but not separable from them.  On the
LiveJournal-style corpus, declared communities are likewise *covered* by
detected blocks (Louvain merges them into coarser modules).
"""

import numpy as np

from repro.analysis.report import render_kv
from repro.data.groups import GroupSet, VertexGroup
from repro.detection import (
    coverage_fraction,
    louvain_communities,
    mean_best_jaccard,
    partition_modularity,
)


def test_ext_detection_gplus(benchmark, gplus):
    partition = benchmark.pedantic(
        lambda: louvain_communities(gplus.graph, seed=0), rounds=1, iterations=1
    )
    quality = partition_modularity(gplus.graph, partition)
    circles = gplus.groups.filter_by_size(minimum=2)
    circle_jaccard = mean_best_jaccard(circles, partition)
    ego_groups = GroupSet(
        groups=[
            VertexGroup(name=f"ego-{network.ego}", members=network.vertices)
            for network in gplus.ego_collection
        ]
    )
    ego_jaccard = mean_best_jaccard(ego_groups, partition)
    circle_coverage = float(
        np.median([coverage_fraction(group, partition) for group in circles])
    )

    print()
    print(render_kv(
        {
            "detected blocks": len(partition),
            "partition modularity": round(quality, 4),
            "circle recovery (mean best Jaccard)": round(circle_jaccard, 4),
            "ego-network recovery (mean best Jaccard)": round(ego_jaccard, 4),
            "circle coverage (median)": round(circle_coverage, 4),
        },
        title="Louvain on the Google+ corpus",
    ))
    benchmark.extra_info["circle_jaccard"] = circle_jaccard
    benchmark.extra_info["ego_jaccard"] = ego_jaccard

    # The detector finds a strongly modular structure...
    assert quality > 0.3
    # ...which is the ego networks, not the circles:
    assert ego_jaccard > 5 * circle_jaccard
    # circles sit inside detected blocks (covered) without being separable.
    assert circle_coverage > 0.6
    assert circle_jaccard < 0.15


def test_ext_detection_communities_more_recoverable(gplus, livejournal):
    """Declared communities align with detected structure better than
    circles do — consistent with the paper's conclusion that circles are a
    different kind of object."""
    circle_partition = louvain_communities(gplus.graph, seed=0)
    community_partition = louvain_communities(livejournal.graph, seed=0)
    circle_score = mean_best_jaccard(
        gplus.groups.filter_by_size(minimum=2), circle_partition
    )
    community_score = mean_best_jaccard(
        livejournal.groups.filter_by_size(minimum=2), community_partition
    )
    community_coverage = float(
        np.median(
            [
                coverage_fraction(group, community_partition)
                for group in livejournal.groups.filter_by_size(minimum=2)
            ]
        )
    )
    assert community_score > circle_score
    assert community_coverage > 0.8
