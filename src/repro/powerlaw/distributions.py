"""Tail distributions for degree-sequence model selection.

Following Clauset, Shalizi & Newman (SIAM Rev. 2009), each candidate model
is fit to the tail ``x >= xmin`` of an integer sample by maximum
likelihood, with properly normalized *discrete* probability mass functions:

* :class:`PowerLawTail` — :math:`p(k) = k^{-\\alpha} / \\zeta(\\alpha, x_{min})`
  (exact discrete form via the Hurwitz zeta function);
* :class:`LogNormalTail` and :class:`ExponentialTail` — continuous
  densities discretized to :math:`P(X=k) = F(k+1/2) - F(k-1/2)` and
  renormalized over the tail, the standard treatment for degree data.

All models expose ``logpmf`` and ``cdf`` on the tail support, which is what
the KS-based ``xmin`` scan and the Vuong likelihood-ratio test consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, special, stats

from repro.exceptions import FitError

__all__ = [
    "TailDistribution",
    "PowerLawTail",
    "LogNormalTail",
    "ExponentialTail",
    "DISTRIBUTIONS",
]


def _validate_tail(data: np.ndarray, xmin: int) -> np.ndarray:
    data = np.asarray(data, dtype=np.float64)
    tail = data[data >= xmin]
    if tail.size < 2:
        raise FitError(f"tail above xmin={xmin} has {tail.size} points (need >= 2)")
    if tail.min() == tail.max():
        raise FitError(
            f"tail above xmin={xmin} is constant ({tail[0]:g}); "
            "maximum-likelihood fits are degenerate on zero-variance data"
        )
    return tail


@dataclass(frozen=True)
class TailDistribution:
    """A fitted discrete tail model ``P(X = k | X >= xmin)``.

    Subclasses store their parameters and implement :meth:`logpmf` and
    :meth:`cdf` (the conditional CDF on the tail support).
    """

    xmin: int
    n_tail: int
    loglikelihood: float

    name = "tail"
    #: number of free parameters (for AIC parsimony tie-breaks)
    num_params = 1

    def logpmf(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def cdf(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> dict[str, float]:
        """Fitted parameters by name."""
        raise NotImplementedError

    def ks_distance(self, data: np.ndarray) -> float:
        """Kolmogorov–Smirnov distance between the model and the empirical
        tail CDF of ``data`` (restricted to ``x >= xmin``)."""
        tail = np.sort(_validate_tail(data, self.xmin))
        unique, counts = np.unique(tail, return_counts=True)
        empirical = np.cumsum(counts) / tail.size
        model = self.cdf(unique)
        return float(np.abs(empirical - model).max())


@dataclass(frozen=True)
class PowerLawTail(TailDistribution):
    """Discrete power law: :math:`p(k) = k^{-\\alpha}/\\zeta(\\alpha, x_{min})`."""

    alpha: float = 2.5

    name = "power_law"
    num_params = 1

    @classmethod
    def fit(cls, data: np.ndarray, xmin: int) -> "PowerLawTail":
        """Maximum-likelihood fit of the exponent on the tail of ``data``."""
        tail = _validate_tail(data, xmin)
        log_sum = float(np.log(tail).sum())
        n = tail.size

        def negative_loglikelihood(alpha: float) -> float:
            zeta = special.zeta(alpha, xmin)
            if not np.isfinite(zeta) or zeta <= 0:
                return np.inf
            return alpha * log_sum + n * np.log(zeta)

        result = optimize.minimize_scalar(
            negative_loglikelihood, bounds=(1.0001, 8.0), method="bounded"
        )
        if not result.success:  # pragma: no cover - bounded always converges
            raise FitError("power-law exponent optimization failed")
        alpha = float(result.x)
        return cls(
            xmin=xmin,
            n_tail=n,
            loglikelihood=-float(result.fun),
            alpha=alpha,
        )

    def params(self) -> dict[str, float]:
        return {"alpha": self.alpha}

    def logpmf(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        zeta = special.zeta(self.alpha, self.xmin)
        return -self.alpha * np.log(values) - np.log(zeta)

    def cdf(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        zeta_min = special.zeta(self.alpha, self.xmin)
        survival_next = special.zeta(self.alpha, values + 1.0)
        return 1.0 - survival_next / zeta_min


class _DiscretizedContinuousTail(TailDistribution):
    """Shared machinery for continuous models discretized onto integers.

    Subclasses define the *log survival function* ``_continuous_logsf`` —
    far in the tail the CDF saturates to 1.0 in double precision, so all
    masses are computed from log-survival values, which keep full relative
    precision at any distance into the tail:

    .. math:: P(X = k \\mid X \\ge x_{min})
              = \\frac{S(k - 1/2) - S(k + 1/2)}{S(x_{min} - 1/2)}
    """

    def _continuous_logsf(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def logpmf(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        log_upper = self._continuous_logsf(values - 0.5)
        log_lower = self._continuous_logsf(values + 0.5)
        # log(S(a) - S(b)) = logS(a) + log(1 - exp(logS(b) - logS(a))),
        # entirely in log space so extreme parameters degrade gracefully
        # to very negative log-likelihoods instead of fake-perfect zeros.
        with np.errstate(divide="ignore", invalid="ignore"):
            delta = np.minimum(log_lower - log_upper, -1e-300)
            log_mass = log_upper + np.log1p(-np.exp(delta))
        log_norm = float(self._continuous_logsf(np.array([self.xmin - 0.5]))[0])
        result = log_mass - log_norm
        return np.where(np.isfinite(result), result, -745.0)

    def cdf(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        log_norm = float(self._continuous_logsf(np.array([self.xmin - 0.5]))[0])
        log_survival = self._continuous_logsf(values + 0.5) - log_norm
        return 1.0 - np.exp(np.minimum(log_survival, 0.0))


@dataclass(frozen=True)
class LogNormalTail(_DiscretizedContinuousTail):
    """Discretized log-normal tail — the paper's winning model for the
    Google+ in-degree distribution (Fig. 3)."""

    mu: float = 0.0
    sigma: float = 1.0

    name = "log_normal"
    num_params = 2

    @classmethod
    def fit(cls, data: np.ndarray, xmin: int) -> "LogNormalTail":
        tail = _validate_tail(data, xmin)
        logs = np.log(tail)
        start = np.array([float(logs.mean()), max(float(logs.std()), 0.1)])

        def negative_loglikelihood(theta: np.ndarray) -> float:
            mu, sigma = theta
            if sigma <= 0.01 or sigma > 50:
                return np.inf
            candidate = cls(
                xmin=xmin, n_tail=tail.size, loglikelihood=0.0, mu=mu, sigma=sigma
            )
            ll = candidate.logpmf(tail)
            if not np.all(np.isfinite(ll)):
                return np.inf
            return -float(ll.sum())

        result = optimize.minimize(
            negative_loglikelihood, start, method="Nelder-Mead",
            options={"xatol": 1e-4, "fatol": 1e-6, "maxiter": 2000},
        )
        mu, sigma = result.x
        fitted = cls(
            xmin=xmin,
            n_tail=tail.size,
            loglikelihood=-float(result.fun),
            mu=float(mu),
            sigma=float(sigma),
        )
        if not np.isfinite(fitted.loglikelihood):
            raise FitError("log-normal fit diverged")
        return fitted

    def params(self) -> dict[str, float]:
        return {"mu": self.mu, "sigma": self.sigma}

    def _continuous_logsf(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        safe = np.maximum(values, 1e-12)
        # scipy's log-survival stays accurate arbitrarily deep in the tail.
        return stats.norm.logsf((np.log(safe) - self.mu) / self.sigma)


@dataclass(frozen=True)
class ExponentialTail(_DiscretizedContinuousTail):
    """Discretized exponential tail ``f(x) ~ exp(-lambda x)``."""

    rate: float = 1.0

    name = "exponential"
    num_params = 1

    @classmethod
    def fit(cls, data: np.ndarray, xmin: int) -> "ExponentialTail":
        tail = _validate_tail(data, xmin)
        mean_excess = float(tail.mean()) - xmin
        start = 1.0 / max(mean_excess, 0.05)

        def negative_loglikelihood(rate: float) -> float:
            if rate <= 1e-6 or rate > 100:
                return np.inf
            candidate = cls(
                xmin=xmin, n_tail=tail.size, loglikelihood=0.0, rate=rate
            )
            ll = candidate.logpmf(tail)
            if not np.all(np.isfinite(ll)):
                return np.inf
            return -float(ll.sum())

        result = optimize.minimize_scalar(
            negative_loglikelihood,
            bounds=(max(start / 100, 1e-6), min(start * 100, 100.0)),
            method="bounded",
        )
        fitted = cls(
            xmin=xmin,
            n_tail=tail.size,
            loglikelihood=-float(result.fun),
            rate=float(result.x),
        )
        if not np.isfinite(fitted.loglikelihood):
            raise FitError("exponential fit diverged")
        return fitted

    def params(self) -> dict[str, float]:
        return {"rate": self.rate}

    def _continuous_logsf(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return -self.rate * np.maximum(values, 0.0)

    def logpmf(self, values: np.ndarray) -> np.ndarray:
        # Closed form, stable even when exp(-rate * k) underflows:
        # log P = -rate (k - xmin) + log(1 - e^{-rate}).
        values = np.asarray(values, dtype=np.float64)
        return -self.rate * (values - self.xmin) + np.log1p(-np.exp(-self.rate))

    def cdf(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return 1.0 - np.exp(-self.rate * (values + 1.0 - self.xmin))


#: Candidate models for :func:`repro.powerlaw.fitting.best_fit`.
DISTRIBUTIONS = {
    "power_law": PowerLawTail,
    "log_normal": LogNormalTail,
    "exponential": ExponentialTail,
}
