#!/usr/bin/env python
"""Observability overhead benchmark (the obs layer's receipt).

The instrumentation threaded through the engine, samplers, null models
and experiment drivers must be **free when disabled**: every instrument
guards on one attribute load (``STATE.enabled``) and ``obs.span`` returns
a shared no-op context manager.  This benchmark verifies both halves of
that contract:

* **correctness** — the batch scoring pass produces *byte-identical*
  score arrays with tracing enabled and disabled (instrumentation must
  never perturb results, only observe them);
* **cost** — the measured per-call price of a disabled instrument
  (no-op span enter/exit, guarded counter increment), scaled by a
  *generous* per-workload call allowance, stays below ``MAX_OVERHEAD``
  (3 %) of the real disabled scoring pass.

The call-allowance framing is deliberate: with instrumentation compiled
into the library there is no uninstrumented twin to diff against, so the
honest bound is (calls per workload) x (cost per disabled call).  A
workload of this shape executes a few dozen instrument touches; the
allowance budgets ``ASSUMED_CALLS`` of them.  Emits a JSON report::

    python benchmarks/bench_obs_overhead.py            # full, asserts < 3%
    python benchmarks/bench_obs_overhead.py --smoke    # small corpus,
                                                       # identity check only
    python benchmarks/bench_obs_overhead.py --smoke --trace-out trace.jsonl
                                                       # also write a sample
                                                       # trace (CI artifact)
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro import obs
from repro.engine import AnalysisContext
from repro.obs import write_manifests
from repro.scoring.registry import make_paper_functions, score_groups
from repro.synth.paper_datasets import GOOGLE_PLUS_CONFIG, build_google_plus

#: Maximum tolerated disabled-instrumentation overhead (acceptance
#: criterion: < 3 % of the scoring pass).
MAX_OVERHEAD = 0.03

#: Disabled instrument calls budgeted per workload pass.  The real count
#: for one ``score_groups`` pass is ~10 (one span per layer plus a few
#: guarded counters); 100 is a ~10x safety margin.
ASSUMED_CALLS = 100

#: Iterations of the disabled-instrument microbenchmark.
MICRO_ITERATIONS = 200_000

#: Workload repetitions; the best run is compared.
DEFAULT_REPEAT = 5


def _build_dataset(smoke: bool):
    if smoke:
        config = dataclasses.replace(GOOGLE_PLUS_CONFIG, num_egos=8)
    else:
        config = GOOGLE_PLUS_CONFIG
    return build_google_plus(config=config)


def _timed(run_once):
    start = time.perf_counter()
    result = run_once()
    return time.perf_counter() - start, result


def _micro_noop_span_ns() -> float:
    """Per-call cost of entering and exiting a disabled span, in ns."""
    span = obs.span  # attribute lookups out of the loop, like hot code
    start = time.perf_counter()
    for _ in range(MICRO_ITERATIONS):
        with span("bench.noop"):
            pass
    return (time.perf_counter() - start) / MICRO_ITERATIONS * 1e9


def _micro_disabled_counter_ns() -> float:
    """Per-call cost of a guarded counter increment while disabled."""
    from repro.obs import instruments

    inc = instruments.GROUPS_SCORED.inc
    start = time.perf_counter()
    for _ in range(MICRO_ITERATIONS):
        inc(1)
    return (time.perf_counter() - start) / MICRO_ITERATIONS * 1e9


def run(
    smoke: bool = False,
    repeat: int = DEFAULT_REPEAT,
    trace_out: str | None = None,
) -> dict:
    """Run the overhead benchmark and return the JSON-ready report."""
    if obs.enabled():  # REPRO_TRACE leaked in; measure the real thing
        obs.disable()
    dataset = _build_dataset(smoke)
    context = AnalysisContext(dataset.graph)
    groups = dataset.groups.filter_by_size(minimum=2)
    functions = make_paper_functions()

    def workload():
        return score_groups(context, groups, functions)

    # Disabled pass: what every untraced experiment pays.
    disabled_seconds = float("inf")
    for _ in range(repeat):
        seconds, disabled_table = _timed(workload)
        disabled_seconds = min(disabled_seconds, seconds)

    # Enabled pass: tracing on; results must be byte-identical.
    tracer = obs.enable(name="bench_obs_overhead")
    try:
        enabled_seconds, enabled_table = _timed(workload)
    finally:
        obs.disable()
    byte_identical = all(
        enabled_table.columns[name].tobytes()
        == disabled_table.columns[name].tobytes()
        for name in disabled_table.columns
    ) and list(enabled_table.group_names) == list(disabled_table.group_names)

    if trace_out is not None:
        path = Path(trace_out)
        tracer.write_jsonl(path)
        write_manifests(tracer.manifests, path.with_suffix(".manifest.json"))

    # Disabled-instrument microbenchmark -> bounded overhead estimate.
    noop_span_ns = _micro_noop_span_ns()
    disabled_counter_ns = _micro_disabled_counter_ns()
    per_call_ns = max(noop_span_ns, disabled_counter_ns)
    overhead_fraction = (
        ASSUMED_CALLS * per_call_ns * 1e-9 / disabled_seconds
        if disabled_seconds > 0
        else 0.0
    )

    return {
        "mode": "smoke" if smoke else "full",
        "dataset": dataset.name,
        "n": dataset.graph.number_of_nodes(),
        "m": dataset.graph.number_of_edges(),
        "groups": len(disabled_table.group_names),
        "repeat": repeat,
        "disabled_seconds": round(disabled_seconds, 4),
        "enabled_seconds": round(enabled_seconds, 4),
        "noop_span_ns": round(noop_span_ns, 1),
        "disabled_counter_ns": round(disabled_counter_ns, 1),
        "assumed_calls": ASSUMED_CALLS,
        "overhead_fraction": round(overhead_fraction, 6),
        "max_overhead": MAX_OVERHEAD,
        "byte_identical": byte_identical,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the disabled-instrumentation overhead of "
        "the repro.obs layer"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, identity check only (no overhead assertion)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=DEFAULT_REPEAT,
        help="workload repetitions (best run wins)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the enabled pass's trace JSONL here (CI artifact)",
    )
    parser.add_argument(
        "-o", "--output", default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)

    report = run(smoke=args.smoke, repeat=args.repeat, trace_out=args.trace_out)
    serialized = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(serialized + "\n")
    print(serialized)

    if not report["byte_identical"]:
        print(
            "FAIL: scores differ between tracing on and off", file=sys.stderr
        )
        return 1
    if not args.smoke and report["overhead_fraction"] >= MAX_OVERHEAD:
        print(
            f"FAIL: disabled-instrumentation overhead "
            f"{report['overhead_fraction']:.4%} >= {MAX_OVERHEAD:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
