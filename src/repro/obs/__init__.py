"""repro.obs — zero-dependency observability: tracing, metrics, manifests.

Three instruments, one switch:

* :func:`span` — nestable timing spans collected into a tree by the
  active :class:`~repro.obs.tracer.Tracer` (wall time, optional
  ``tracemalloc`` peak delta, counters), exported as JSONL or text;
* :data:`~repro.obs.metrics.REGISTRY` — process-wide counters, gauges
  and fixed-bucket histograms incremented by the engine kernels,
  samplers, null models and the linter (catalogue:
  :mod:`repro.obs.instruments` and ``docs/OBSERVABILITY.md``);
* :class:`~repro.obs.manifest.RunManifest` — captured at every
  experiment entry point while enabled: seeds, dataset fingerprints,
  chosen kernels, package/Python versions.

Everything is **off by default** and instrumentation must never change a
result: with the switch off, :func:`span` returns a shared no-op context
manager and every metric method returns after one flag check
(``benchmarks/bench_obs_overhead.py`` holds this under 3 % of the
batch-scoring pass and asserts scores are byte-identical on vs. off).

Enable programmatically::

    from repro import obs

    tracer = obs.enable()
    result = circles_vs_random(dataset, seed=0)
    obs.disable()
    tracer.write_jsonl("trace.jsonl")

or from the shell: ``repro trace score --dataset gplus-synth`` /
``--trace-out trace.jsonl`` on any subcommand / ``REPRO_TRACE=1`` in the
environment (auto-enables at import; export via the CLI or your own
:func:`current_tracer` call).
"""

from __future__ import annotations

import os

from repro.obs._runtime import STATE
from repro.obs.manifest import (
    DatasetManifest,
    RunManifest,
    capture_manifest,
    fingerprint_context,
    read_manifests,
    write_manifests,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "Tracer",
    "DatasetManifest",
    "RunManifest",
    "capture_manifest",
    "fingerprint_context",
    "write_manifests",
    "read_manifests",
    "enabled",
    "enable",
    "enable_metrics",
    "disable",
    "current_tracer",
    "span",
    "add",
    "record_manifest",
]


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


def enabled() -> bool:
    """Return whether observability is currently on."""
    return STATE.enabled


def enable(
    tracer: Tracer | None = None, *, name: str = "run", memory: bool = False
) -> Tracer:
    """Switch observability on and install (or create) the active tracer.

    ``memory=True`` starts :mod:`tracemalloc` (if not already tracing) so
    spans record peak allocation deltas; :func:`disable` stops it again
    if this call started it.  Re-enabling replaces the previous tracer.
    """
    import tracemalloc

    if tracer is None:
        tracer = Tracer(name, memory=memory)
    elif memory:
        tracer.memory = True
    if tracer.memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        STATE.owns_tracemalloc = True
    STATE.tracer = tracer
    STATE.enabled = True
    return tracer


def enable_metrics() -> None:
    """Switch observability on *without* installing a tracer.

    The long-running path (the service layer, ``repro serve``): every
    :data:`REGISTRY` instrument records, but :func:`span` keeps
    returning the shared no-op because no tracer is active — a server
    must not accumulate an unbounded span tree over its lifetime.
    :func:`disable` switches back off; calling this while a tracer is
    already enabled is a no-op (the tracer stays).
    """
    STATE.enabled = True


def disable() -> Tracer | None:
    """Switch observability off; return the tracer that was active."""
    import tracemalloc

    tracer = STATE.tracer
    if STATE.owns_tracemalloc and tracemalloc.is_tracing():
        tracemalloc.stop()
    STATE.owns_tracemalloc = False
    STATE.tracer = None
    STATE.enabled = False
    return tracer


def current_tracer() -> Tracer | None:
    """Return the active tracer, or None while observability is off."""
    return STATE.tracer


def span(name: str):
    """Open a named span on the active tracer (shared no-op when off).

    Usage at instrumented sites::

        with obs.span("engine.score_batch"):
            ...
    """
    if STATE.enabled and STATE.tracer is not None:
        return STATE.tracer.span(name)
    return _NOOP_SPAN


def add(key: str, value: float = 1) -> None:
    """Accumulate a counter on the innermost open span (no-op when off)."""
    if STATE.enabled and STATE.tracer is not None:
        STATE.tracer.add(key, value)


def record_manifest(manifest: RunManifest) -> None:
    """Attach a captured manifest to the active tracer (no-op when off)."""
    if not STATE.enabled:
        return
    from repro.obs import instruments

    instruments.MANIFESTS_RECORDED.inc()
    if STATE.tracer is not None:
        STATE.tracer.manifests.append(manifest)


# REPRO_TRACE=1 auto-enables tracing at import (same falsy vocabulary as
# REPRO_CHECK_INVARIANTS in repro/__init__); nothing is written implicitly
# — export through the CLI's --trace-out or current_tracer().
if os.environ.get("REPRO_TRACE", "").strip().lower() not in (
    "",
    "0",
    "false",
    "no",
    "off",
):
    enable(name="env")
