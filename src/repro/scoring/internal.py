"""Scoring functions based on internal connectivity.

These characterize a community by how densely its members connect to each
other, ignoring the surrounding graph.  The paper's representative of this
family (section V-a) is the **Average Degree**; the remaining functions are
the internal-connectivity members of the Yang–Leskovec catalogue, included
as extensions.
"""

from __future__ import annotations

import numpy as np

from repro.scoring.base import GroupStats

__all__ = [
    "AverageDegree",
    "InternalDensity",
    "EdgesInside",
    "FractionOverMedianDegree",
    "TriangleParticipationRatio",
]


class AverageDegree:
    """Average internal degree: :math:`f(C) = 2 m_C / n_C` (paper eq. 1).

    The mean number of within-group link contacts per member.  Values scale
    with the density of the underlying graph, which is why the paper pairs
    it with density-corrected measures.
    """

    name = "average_degree"

    def __call__(self, stats: GroupStats) -> float:
        return 2.0 * stats.m_C / stats.n_C


class InternalDensity:
    """Internal edge density: fraction of possible internal edges present.

    :math:`f(C) = m_C / \\binom{n_C}{2}` (undirected) or
    :math:`m_C / (n_C (n_C - 1))` (directed).  Single-vertex groups score 0.
    """

    name = "internal_density"

    def __call__(self, stats: GroupStats) -> float:
        possible = stats.possible_internal_edges
        if possible == 0:
            return 0.0
        return stats.m_C / possible


class EdgesInside:
    """Raw internal edge count: :math:`f(C) = m_C`."""

    name = "edges_inside"

    def __call__(self, stats: GroupStats) -> float:
        return float(stats.m_C)


class FractionOverMedianDegree:
    """FOMD: fraction of members whose *internal* degree exceeds the median
    total degree of the whole graph.

    Requires ``stats.graph_median_degree``; the batch driver in
    :mod:`repro.scoring.registry` fills it in once per graph.
    """

    name = "fomd"

    def __call__(self, stats: GroupStats) -> float:
        median = stats.graph_median_degree
        if median is None:
            degrees = np.fromiter(
                (stats.graph.degree[node] for node in stats.graph),
                dtype=np.int64,
                count=stats.n,
            )
            median = float(np.median(degrees)) if degrees.size else 0.0
        over = int((stats.member_internal_degrees > median).sum())
        return over / stats.n_C


class TriangleParticipationRatio:
    """TPR: fraction of members that close at least one triangle inside C.

    Triangles are evaluated on the undirected skeleton of the induced
    subgraph, the Yang–Leskovec convention.
    """

    name = "tpr"

    def __call__(self, stats: GroupStats) -> float:
        member_set = frozenset(stats.members)
        graph = stats.graph
        # Undirected-skeleton neighbour sets restricted to the group.
        if graph.is_directed:
            succ = graph._succ  # noqa: SLF001
            pred = graph._pred  # noqa: SLF001
            inside = {
                node: (succ[node] | pred[node]) & member_set
                for node in stats.members
            }
        else:
            adj = graph._adj  # noqa: SLF001
            inside = {node: adj[node] & member_set for node in stats.members}
        in_triangle = 0
        for node, neighbors in inside.items():
            found = False
            for u in neighbors:
                if inside[u] & neighbors - {node}:
                    found = True
                    break
            if found:
                in_triangle += 1
        return in_triangle / stats.n_C
