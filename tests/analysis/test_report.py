"""Report-rendering tests."""

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.report import render_cdf_panel, render_kv, render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_column_selection_and_missing_cells(self):
        text = render_table([{"a": 1}], columns=["a", "z"])
        assert "z" in text

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_float_formatting(self):
        text = render_table([{"v": 0.000012345}, {"v": 123456.0}])
        assert "1.23e-05" in text
        assert "1.23e+05" in text


class TestRenderKV:
    def test_alignment(self):
        text = render_kv({"short": 1, "a_longer_key": 2.5})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert "(empty)" in render_kv({})


class TestRenderCdfPanel:
    def test_two_series_with_legend(self):
        panel = render_cdf_panel(
            {
                "circles": EmpiricalCDF([0.9, 0.92, 0.95]),
                "random": EmpiricalCDF([0.1, 0.2, 0.3]),
            },
            title="Fig",
            width=30,
            height=8,
        )
        assert panel.startswith("Fig")
        assert "*=circles" in panel
        assert "o=random" in panel
        assert "1.0 |" in panel
        assert "0.0 |" in panel

    def test_log_axis(self):
        panel = render_cdf_panel(
            {"s": EmpiricalCDF([1, 10, 100, 1000])}, log_x=True
        )
        assert "(log)" in panel

    def test_empty_series_skipped(self):
        panel = render_cdf_panel({"empty": EmpiricalCDF([])})
        assert "(no data)" in panel

    def test_constant_series(self):
        panel = render_cdf_panel({"c": EmpiricalCDF([2.0, 2.0])}, width=10)
        assert "x: [2, 2]" in panel
