"""Configuration-model random graphs with prescribed degree sequences.

Stub matching produces a uniformly random multigraph.  For the simple-graph
null model the paper needs, a single matching pass *skips* collisions
(self-loops / duplicate edges) and then repairs the leftover stubs with
degree-neutral edge swaps — the standard trick that keeps the sample close
to uniform while realizing the degree sequence *exactly*, even for dense or
heavy-tailed sequences where collision-free matching essentially never
succeeds.  If the repair budget is exhausted, the model falls back to a
deterministic realization (Havel–Hakimi / Kleitman–Wang) randomized by
degree-preserving swaps.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import NotGraphical
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.nullmodel.degree_sequence import is_digraphical, is_graphical

__all__ = ["configuration_model", "directed_configuration_model"]

#: swap attempts per leftover stub pair before giving up on repair
_REPAIR_TRIES = 200


def _repair_undirected(
    graph: Graph,
    leftovers: list[tuple[int, int]],
    edges: list[tuple[int, int]],
    rng: np.random.Generator,
) -> bool:
    """Place leftover stub pairs via degree-neutral double swaps.

    To give ``u`` and ``v`` one more edge endpoint each without touching
    other degrees, pick an existing edge ``(x, y)`` and rewire to
    ``(u, x), (v, y)``.  Returns False when a pair cannot be placed.
    """
    for u, v in leftovers:
        placed = False
        for _ in range(_REPAIR_TRIES):
            index = int(rng.integers(len(edges)))
            x, y = edges[index]
            if rng.random() < 0.5:
                x, y = y, x
            if u in (x, y) or v in (x, y):
                continue
            if graph.has_edge(u, x) or graph.has_edge(v, y):
                continue
            graph.remove_edge(x, y)
            graph.add_edge(u, x)
            graph.add_edge(v, y)
            edges[index] = (u, x)
            edges.append((v, y))
            placed = True
            break
        if not placed:
            return False
    return True


def configuration_model(
    degrees: Sequence[int],
    *,
    seed: int | np.random.Generator | None = None,
    max_attempts: int = 3,
) -> Graph:
    """Random simple undirected graph with *exactly* the given degrees.

    One stub-matching pass per attempt, skipping collisions; leftover
    stubs are placed by degree-neutral swaps.  Falls back to a randomized
    Havel–Hakimi realization if repair fails (pathologically dense
    sequences).
    """
    if not is_graphical(degrees):
        raise NotGraphical(f"degree sequence is not graphical: n={len(degrees)}")
    rng = np.random.default_rng(seed)
    for _ in range(max_attempts):
        stubs = np.repeat(np.arange(len(degrees)), degrees)
        rng.shuffle(stubs)
        graph = Graph()
        graph.add_nodes_from(range(len(degrees)))
        edges: list[tuple[int, int]] = []
        leftovers: list[tuple[int, int]] = []
        for i in range(0, len(stubs) - 1, 2):
            u, v = int(stubs[i]), int(stubs[i + 1])
            if u == v or graph.has_edge(u, v):
                leftovers.append((u, v))
                continue
            graph.add_edge(u, v)
            edges.append((u, v))
        if not leftovers:
            return graph
        if edges and _repair_undirected(graph, leftovers, edges, rng):
            return graph
    # Deterministic exact realization randomized by swaps.
    from repro.nullmodel.degree_sequence import havel_hakimi_graph
    from repro.nullmodel.rewiring import double_edge_swap

    graph = havel_hakimi_graph(degrees)
    double_edge_swap(
        graph, 2 * graph.number_of_edges(), seed=int(rng.integers(2**32))
    )
    return graph


def _repair_directed(
    graph: DiGraph,
    leftovers: list[tuple[int, int]],
    edges: list[tuple[int, int]],
    rng: np.random.Generator,
) -> bool:
    """Place leftover (out-stub, in-stub) pairs via degree-neutral swaps.

    To give ``u`` one more out-edge and ``v`` one more in-edge, pick an
    existing edge ``(x, y)`` and rewire to ``(u, y), (x, v)``.
    """
    for u, v in leftovers:
        placed = False
        for _ in range(_REPAIR_TRIES):
            index = int(rng.integers(len(edges)))
            x, y = edges[index]
            if u == y or x == v:
                continue
            if graph.has_edge(u, y) or graph.has_edge(x, v):
                continue
            graph.remove_edge(x, y)
            graph.add_edge(u, y)
            graph.add_edge(x, v)
            edges[index] = (u, y)
            edges.append((x, v))
            placed = True
            break
        if not placed:
            return False
    return True


def directed_configuration_model(
    in_degrees: Sequence[int],
    out_degrees: Sequence[int],
    *,
    seed: int | np.random.Generator | None = None,
    max_attempts: int = 3,
) -> DiGraph:
    """Random simple directed graph with *exactly* the given sequences.

    Same strategy as :func:`configuration_model`; the deterministic
    fallback is Kleitman–Wang randomized by directed swaps.
    """
    if not is_digraphical(in_degrees, out_degrees):
        raise NotGraphical("(in, out) degree sequence is not digraphical")
    rng = np.random.default_rng(seed)
    n = len(in_degrees)
    out_stubs = np.repeat(np.arange(n), out_degrees)
    in_stubs = np.repeat(np.arange(n), in_degrees)
    for _ in range(max_attempts):
        rng.shuffle(out_stubs)
        rng.shuffle(in_stubs)
        graph = DiGraph()
        graph.add_nodes_from(range(n))
        edges: list[tuple[int, int]] = []
        leftovers: list[tuple[int, int]] = []
        for u, v in zip(out_stubs, in_stubs):
            u, v = int(u), int(v)
            if u == v or graph.has_edge(u, v):
                leftovers.append((u, v))
                continue
            graph.add_edge(u, v)
            edges.append((u, v))
        if not leftovers:
            return graph
        if edges and _repair_directed(graph, leftovers, edges, rng):
            return graph
    from repro.nullmodel.degree_sequence import kleitman_wang_graph
    from repro.nullmodel.rewiring import directed_edge_swap

    graph = kleitman_wang_graph(in_degrees, out_degrees)
    directed_edge_swap(
        graph, 2 * graph.number_of_edges(), seed=int(rng.integers(2**32))
    )
    return graph
