"""Vertex-set sampler tests (random walk + ablation samplers)."""

import random

import pytest

from repro.exceptions import SamplingError
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.sampling.random_sets import (
    SAMPLERS,
    bfs_ball_set,
    forest_fire_set,
    sample_matched_sets,
    uniform_vertex_set,
)
from repro.sampling.random_walk import matched_random_sets, random_walk_set


def _grid_graph(side: int = 8) -> Graph:
    graph = Graph()
    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                graph.add_edge((i, j), (i + 1, j))
            if j + 1 < side:
                graph.add_edge((i, j), (i, j + 1))
    return graph


class TestRandomWalk:
    def test_exact_size(self):
        graph = _grid_graph()
        sample = random_walk_set(graph, 10, seed=0)
        assert len(sample) == 10
        assert all(node in graph for node in sample)

    def test_reproducible(self):
        graph = _grid_graph()
        assert random_walk_set(graph, 12, seed=5) == random_walk_set(
            graph, 12, seed=5
        )

    def test_connectedness_tendency(self):
        # A walk-grown set in a connected graph should contain at least
        # some adjacent pairs (unlike uniform sampling of a large graph).
        graph = _grid_graph(10)
        sample = random_walk_set(graph, 15, seed=1)
        adjacent_pairs = sum(
            1
            for u in sample
            for v in graph.neighbors(u)
            if v in sample
        )
        assert adjacent_pairs > 0

    def test_directed_walk_ignores_direction(self):
        graph = DiGraph([(i, i + 1) for i in range(20)])
        sample = random_walk_set(graph, 10, seed=2)
        assert len(sample) == 10

    def test_restarts_cross_components(self):
        graph = Graph([(1, 2), (2, 3), (10, 11), (11, 12)])
        sample = random_walk_set(graph, 5, seed=3)
        assert len(sample) == 5

    def test_size_larger_than_graph_raises(self, triangle_graph):
        with pytest.raises(SamplingError):
            random_walk_set(triangle_graph, 10)

    def test_non_positive_size_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            random_walk_set(triangle_graph, 0)

    def test_matched_sets_sizes(self):
        graph = _grid_graph()
        sets = matched_random_sets(graph, [3, 7, 5], seed=0)
        assert [len(s) for s in sets] == [3, 7, 5]

    def test_accepts_random_instance(self):
        graph = _grid_graph()
        rng = random.Random(0)
        sample = random_walk_set(graph, 5, seed=rng)
        assert len(sample) == 5


class TestAblationSamplers:
    @pytest.mark.parametrize("name", sorted(SAMPLERS))
    def test_exact_size(self, name):
        graph = _grid_graph()
        sample = SAMPLERS[name](graph, 12, seed=0)
        assert len(sample) == 12

    def test_uniform_is_spread_out(self):
        graph = _grid_graph(10)
        sample = uniform_vertex_set(graph, 10, seed=0)
        assert len(sample) == 10

    def test_bfs_ball_is_connected(self):
        graph = _grid_graph(10)
        sample = bfs_ball_set(graph, 12, seed=1)
        sub = graph.subgraph(sample)
        from repro.algorithms.traversal import is_connected

        assert is_connected(sub)

    def test_forest_fire_probability_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            forest_fire_set(triangle_graph, 2, burn_probability=0.0)
        with pytest.raises(ValueError):
            forest_fire_set(triangle_graph, 2, burn_probability=1.5)

    def test_forest_fire_full_burn_equals_bfs_size(self):
        graph = _grid_graph()
        sample = forest_fire_set(graph, 9, seed=2, burn_probability=1.0)
        assert len(sample) == 9

    def test_oversized_request_raises(self, triangle_graph):
        with pytest.raises(SamplingError):
            uniform_vertex_set(triangle_graph, 99)

    def test_sample_matched_sets_dispatch(self):
        graph = _grid_graph()
        for name in ("random_walk", "uniform", "bfs_ball", "forest_fire"):
            sets = sample_matched_sets(graph, [4, 6], name, seed=0)
            assert [len(s) for s in sets] == [4, 6]

    def test_unknown_sampler_rejected(self, triangle_graph):
        with pytest.raises(KeyError, match="random_walk"):
            sample_matched_sets(triangle_graph, [2], "bogus")
