"""Heavy-tail distribution fitting per Clauset–Shalizi–Newman."""

from repro.powerlaw.comparison import (
    LikelihoodRatio,
    ModelSelection,
    best_fit,
    likelihood_ratio,
)
from repro.powerlaw.distributions import (
    DISTRIBUTIONS,
    ExponentialTail,
    LogNormalTail,
    PowerLawTail,
    TailDistribution,
)
from repro.powerlaw.fitting import TailFit, fit_all, fit_tail, scan_xmin

__all__ = [
    "TailDistribution",
    "PowerLawTail",
    "LogNormalTail",
    "ExponentialTail",
    "DISTRIBUTIONS",
    "TailFit",
    "fit_tail",
    "fit_all",
    "scan_xmin",
    "LikelihoodRatio",
    "likelihood_ratio",
    "ModelSelection",
    "best_fit",
]
