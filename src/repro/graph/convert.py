"""Conversions between graph representations.

The paper's robustness check (section IV-B) compares scoring results on the
directed Google+/Twitter graphs against an *undirected representation with
bidirectional edges combined to one*; :func:`to_undirected` implements
exactly that collapse.  The other helpers cover relabeling and
integer-indexing, which the CSR kernels and null models rely on.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph

Node = Hashable

__all__ = [
    "to_undirected",
    "to_directed",
    "relabel_nodes",
    "integer_index",
    "from_edges",
    "stable_sorted",
]


def _conversion_check(source: Graph | DiGraph, result: Graph | DiGraph) -> None:
    """Post-conversion hook; replaced by :mod:`repro.devtools.invariants`
    when ``REPRO_CHECK_INVARIANTS`` is active.  No-op by default."""


def stable_sorted(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes into a deterministic, hash-independent order.

    Iterating a ``set`` of string nodes depends on ``PYTHONHASHSEED``, so
    any stochastic pipeline that draws from raw set order produces
    different output across processes *even with the same seed*.  Every
    sampler and null model orders candidate sets through this helper
    before consuming randomness.  Falls back to ``repr`` ordering for
    mixed-type node sets that do not support ``<``.
    """
    items = list(nodes)
    try:
        items.sort()
    except TypeError:
        items.sort(key=repr)
    return items


def to_undirected(graph: DiGraph | Graph, *, reciprocal_only: bool = False) -> Graph:
    """Return an undirected copy of ``graph``.

    Each directed edge becomes one undirected edge; a reciprocal pair
    ``u -> v`` / ``v -> u`` collapses to a single edge (the paper's
    "bidirectional edges combined to one").  With ``reciprocal_only=True``
    only reciprocated pairs are kept, dropping one-way edges entirely.

    Passing an undirected graph returns a copy (``reciprocal_only`` is
    meaningless there and must be left False).
    """
    if not graph.is_directed:
        if reciprocal_only:
            raise ValueError("reciprocal_only requires a directed graph")
        return graph.copy()
    result = Graph(name=graph.name)
    result.add_nodes_from(graph)
    for u, successors in graph.successors_adjacency():
        for v in successors:
            if reciprocal_only and not graph.has_edge(v, u):
                continue
            result.add_edge(u, v)
    _conversion_check(graph, result)
    return result


def to_directed(graph: Graph) -> DiGraph:
    """Return a directed copy with each undirected edge as a reciprocal pair."""
    result = DiGraph(name=graph.name)
    result.add_nodes_from(graph)
    for u, v in graph.edges:
        result.add_edge(u, v)
        result.add_edge(v, u)
    _conversion_check(graph, result)
    return result


def relabel_nodes(
    graph: Graph | DiGraph, mapping: Mapping[Node, Node]
) -> Graph | DiGraph:
    """Return a copy of ``graph`` with nodes renamed through ``mapping``.

    Every node must be present in ``mapping`` and the mapping must be
    injective on the node set; otherwise :class:`ValueError` is raised.
    """
    targets = [mapping[node] for node in graph]
    if len(set(targets)) != len(targets):
        raise ValueError("relabel mapping is not injective on the node set")
    if graph.is_directed:
        result: Graph | DiGraph = DiGraph(name=graph.name)
        result.add_nodes_from(targets)
        for u, v in graph.edges:
            result.add_edge(mapping[u], mapping[v])
    else:
        result = Graph(name=graph.name)
        result.add_nodes_from(targets)
        for u, v in graph.edges:
            result.add_edge(mapping[u], mapping[v])
    return result


def integer_index(graph: Graph | DiGraph) -> tuple[dict[Node, int], list[Node]]:
    """Return a stable node -> index mapping and its inverse list.

    Indices follow insertion order of the graph's node dict, so repeated
    calls on the same graph give identical mappings.
    """
    index_of: dict[Node, int] = {}
    nodes: list[Node] = []
    for i, node in enumerate(graph):
        index_of[node] = i
        nodes.append(node)
    return index_of, nodes


def from_edges(
    edges: Iterable[tuple[Node, Node]],
    *,
    directed: bool = False,
    nodes: Iterable[Node] | None = None,
    name: str = "",
) -> Graph | DiGraph:
    """Build a graph from an edge iterable (and optional isolated nodes)."""
    graph: Graph | DiGraph = DiGraph(name=name) if directed else Graph(name=name)
    if nodes is not None:
        graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    return graph
