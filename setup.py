"""Setup shim for legacy editable installs.

The runtime environment ships setuptools without the ``wheel`` package, so
PEP 660 editable wheels cannot be built; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
