"""Two-sample statistics for score-distribution comparisons.

The paper argues from CDF plots ("the functions clearly differentiate
circles from the random sets").  These utilities quantify that visual
argument: the Kolmogorov–Smirnov two-sample distance/test and the
Mann–Whitney U rank test, both implemented from scratch (scipy is used in
the unit tests as the oracle, not here).
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

__all__ = ["TwoSampleResult", "ks_two_sample", "mann_whitney_u", "separation_report"]


@dataclass(frozen=True)
class TwoSampleResult:
    """Outcome of a two-sample comparison.

    ``statistic`` is test-specific (KS distance, or the Mann-Whitney
    common-language effect size); ``p_value`` is the asymptotic two-sided
    significance of "both samples come from the same distribution".
    """

    test: str
    statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Significance at the conventional 0.05 level."""
        return self.p_value < 0.05


def _clean(values: Iterable[float]) -> np.ndarray:
    data = np.asarray(list(values), dtype=np.float64)
    return data[np.isfinite(data)]


def ks_two_sample(first: Iterable[float], second: Iterable[float]) -> TwoSampleResult:
    """Two-sample Kolmogorov–Smirnov test.

    Statistic: the maximum gap between the two empirical CDFs — the visual
    separation of a Fig. 5/6 panel.  The p-value uses the asymptotic
    Kolmogorov distribution (Smirnov's formula), accurate for the
    hundred-plus group populations the experiments produce.
    """
    a = np.sort(_clean(first))
    b = np.sort(_clean(second))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.union1d(a, b)
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    statistic = float(np.abs(cdf_a - cdf_b).max())
    effective = a.size * b.size / (a.size + b.size)
    lam = (math.sqrt(effective) + 0.12 + 0.11 / math.sqrt(effective)) * statistic
    # Kolmogorov survival series: 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lam^2).
    # The alternating series only converges for lam away from 0; below 0.3
    # the true survival exceeds 1 - 1e-9, so return 1 directly.
    if lam < 0.3:
        return TwoSampleResult(test="ks", statistic=statistic, p_value=1.0)
    p_value = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * (k * lam) ** 2)
        p_value += term
        if abs(term) < 1e-10:
            break
    return TwoSampleResult(
        test="ks", statistic=statistic, p_value=float(min(max(p_value, 0.0), 1.0))
    )


def mann_whitney_u(
    first: Iterable[float], second: Iterable[float]
) -> TwoSampleResult:
    """Two-sided Mann–Whitney U test with normal approximation and tie
    correction.

    The reported ``statistic`` is the common-language effect size
    ``P(X > Y) + P(X = Y)/2`` — 0.5 means no separation, 1.0 means every
    first-sample value exceeds every second-sample value.
    """
    a = _clean(first)
    b = _clean(second)
    n1, n2 = a.size, b.size
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty")
    combined = np.concatenate([a, b])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty_like(combined)
    # Midranks for ties.
    sorted_values = combined[order]
    position = 0
    while position < len(sorted_values):
        stop = position
        while (
            stop + 1 < len(sorted_values)
            and sorted_values[stop + 1] == sorted_values[position]
        ):
            stop += 1
        midrank = (position + stop) / 2.0 + 1.0
        ranks[order[position : stop + 1]] = midrank
        position = stop + 1
    rank_sum_first = float(ranks[:n1].sum())
    u_first = rank_sum_first - n1 * (n1 + 1) / 2.0
    effect = u_first / (n1 * n2)
    mean_u = n1 * n2 / 2.0
    # Tie-corrected variance.
    __, counts = np.unique(combined, return_counts=True)
    n = n1 + n2
    tie_term = float(((counts**3 - counts)).sum()) / (n * (n - 1)) if n > 1 else 0.0
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term)
    if variance <= 0:
        return TwoSampleResult(test="mann_whitney", statistic=effect, p_value=1.0)
    # Normal approximation with the standard 0.5 continuity correction.
    z = max(abs(u_first - mean_u) - 0.5, 0.0) / math.sqrt(variance)
    p_value = math.erfc(z / math.sqrt(2.0))
    return TwoSampleResult(
        test="mann_whitney", statistic=float(effect), p_value=float(p_value)
    )


def separation_report(
    first: Iterable[float],
    second: Iterable[float],
    *,
    labels: tuple[str, str] = ("first", "second"),
) -> dict[str, float | str | bool]:
    """Both tests plus medians in one row — the quantitative caption for a
    CDF panel."""
    a = _clean(first)
    b = _clean(second)
    ks = ks_two_sample(a, b)
    mw = mann_whitney_u(a, b)
    return {
        "samples": f"{labels[0]} (n={a.size}) vs {labels[1]} (n={b.size})",
        "ks_distance": ks.statistic,
        "ks_p_value": ks.p_value,
        "mw_effect_size": mw.statistic,
        "mw_p_value": mw.p_value,
        "separated": bool(ks.significant and mw.significant),
        f"{labels[0]}_median": float(np.median(a)) if a.size else 0.0,
        f"{labels[1]}_median": float(np.median(b)) if b.size else 0.0,
    }
