"""Figure 6 — the four scoring functions across all four corpora (the
paper's Question 2: circles vs classical communities).

Paper claims reproduced, per panel:

* (a) Average Degree — no qualitative difference between structure kinds
  (internal connectivity is similar);
* (b) Ratio Cut — vanishing for the community corpora, visibly higher for
  the circle corpora (Google+ highest);
* (c) Conductance — ~90 % of Google+ circles above 0.9 while communities
  sit broadly lower (LiveJournal spread out, Orkut with half below 0.75);
* (d) Modularity — all corpora rise steeply on a small scale.
"""

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.comparison import compare_datasets
from repro.analysis.report import render_cdf_panel, render_table
from repro.scoring import make_function, make_paper_functions


def test_fig6_circles_vs_communities(benchmark, all_datasets):
    functions = make_paper_functions() + [make_function("scaled_ratio_cut")]
    result = benchmark.pedantic(
        lambda: compare_datasets(all_datasets, functions=functions),
        rounds=1,
        iterations=1,
    )

    print()
    for name in ("average_degree", "ratio_cut", "conductance", "modularity"):
        print(render_cdf_panel(result.cdfs(name), title=f"Fig. 6 — {name}"))
        print()
    summary = result.signature_summary()
    rows = [{"dataset": name, **values} for name, values in summary.items()]
    print(render_table(rows, title="Structural signatures"))
    benchmark.extra_info.update(
        {name: values for name, values in summary.items()}
    )

    # (a) Average Degree: same order of magnitude across all four corpora.
    medians = {
        name: cdf.median for name, cdf in result.cdfs("average_degree").items()
    }
    assert max(medians.values()) < 10 * min(medians.values())

    # (b) Ratio Cut: circles >> communities; Google+ > Twitter;
    # community values vanish (paper Fig. 6b).
    ratio_means = {
        name: cdf.mean for name, cdf in result.cdfs("ratio_cut").items()
    }
    assert ratio_means["google_plus"] > ratio_means["twitter"]
    assert ratio_means["twitter"] > 2 * ratio_means["orkut"]
    assert ratio_means["twitter"] > 2 * ratio_means["livejournal"]

    # (c) Conductance: the paper's headline signature.
    conductance = result.cdfs("conductance")
    assert conductance["google_plus"].fraction_above(0.9) > 0.8
    assert conductance["twitter"].fraction_above(0.9) > 0.5
    assert conductance["livejournal"].fraction_above(0.9) < 0.2
    assert conductance["orkut"].fraction_above(0.9) < 0.2
    # Orkut: around half the communities below 0.75; LiveJournal is the
    # most spread-out distribution.
    assert 0.25 < conductance["orkut"](0.75) < 0.85
    lj_spread = conductance["livejournal"].quantile(0.9) - conductance[
        "livejournal"
    ].quantile(0.1)
    assert lj_spread > 0.3

    # (d) Modularity: every corpus concentrated at small positive values.
    for name, cdf in result.cdfs("modularity").items():
        assert cdf.median > 0, name
        assert cdf.quantile(0.95) < 0.2, name


def test_fig6_internal_similarity_external_difference(all_datasets):
    """The paper's conclusion in one assertion pair: internal connectivity
    similar, external separation drastically different."""
    result = compare_datasets(all_datasets)
    internal = {n: c.median for n, c in result.cdfs("average_degree").items()}
    external = {n: c.median for n, c in result.cdfs("conductance").items()}
    circles_internal = (internal["google_plus"] + internal["twitter"]) / 2
    community_internal = (internal["livejournal"] + internal["orkut"]) / 2
    circles_external = (external["google_plus"] + external["twitter"]) / 2
    community_external = (external["livejournal"] + external["orkut"]) / 2
    # Internal: same ballpark (within ~3x either way).
    assert 1 / 3 < circles_internal / community_internal < 3
    # External: circles clearly less confined.
    assert circles_external > community_external + 0.15
