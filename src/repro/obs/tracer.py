"""Nestable span tracing into an in-memory tree.

Instrumented code wraps stages in ``with obs.span("engine.freeze"):``;
each span records wall time, an optional ``tracemalloc`` peak delta, and
free-form counters, and nests under whichever span was open when it
started.  The resulting tree exports as JSONL (one record per span, plus
manifest and metrics records — schema in ``docs/OBSERVABILITY.md``) or as
an indented human-readable summary (``repro trace --format text``).

Memory tracking is opt-in (``Tracer(memory=True)``): ``tracemalloc``
itself slows allocation-heavy code noticeably, which would defeat the
"near-zero overhead" contract if it were implied by tracing.  Peak deltas
propagate upward — a parent span's peak is at least the peak of any
child — by carrying the absolute peak through the stack on exit.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.manifest import RunManifest

__all__ = ["Span", "Tracer"]


class Span:
    """One timed stage: name, wall time, memory peak, counters, children."""

    __slots__ = (
        "name",
        "children",
        "counters",
        "wall_seconds",
        "memory_peak_bytes",
        "status",
        "_start",
        "_mem_start",
        "_peak_abs",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.children: list[Span] = []
        self.counters: dict[str, float] = {}
        self.wall_seconds: float | None = None
        self.memory_peak_bytes: int | None = None
        self.status: str = "open"
        self._start = 0.0
        self._mem_start = 0
        self._peak_abs = 0

    def add(self, key: str, value: float = 1) -> None:
        """Accumulate a named counter on this span."""
        self.counters[key] = self.counters.get(key, 0) + value

    def to_dict(self, *, path: str, depth: int) -> dict[str, object]:
        """Serialize this span (without children) as one JSONL record."""
        record: dict[str, object] = {
            "type": "span",
            "name": self.name,
            "path": path,
            "depth": depth,
            "wall_seconds": (
                round(self.wall_seconds, 6)
                if self.wall_seconds is not None
                else None
            ),
            "status": self.status,
        }
        if self.memory_peak_bytes is not None:
            record["memory_peak_bytes"] = self.memory_peak_bytes
        if self.counters:
            record["counters"] = {
                key: self.counters[key] for key in sorted(self.counters)
            }
        return record


class _SpanContext:
    """Context manager driving one span's enter/exit bookkeeping."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        if tracer._stack:
            tracer._stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        tracer._stack.append(span)
        if tracer.memory and tracemalloc.is_tracing():
            span._mem_start = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
        span._start = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        tracer = self._tracer
        span.wall_seconds = time.perf_counter() - span._start
        span.status = "ok" if exc_type is None else f"error:{exc_type.__name__}"
        if tracer.memory and tracemalloc.is_tracing():
            peak = max(tracemalloc.get_traced_memory()[1], span._peak_abs)
            span.memory_peak_bytes = max(0, peak - span._mem_start)
            tracemalloc.reset_peak()
            # Carry the absolute peak up so the parent's peak covers it.
            if len(tracer._stack) > 1:
                parent = tracer._stack[-2]
                parent._peak_abs = max(parent._peak_abs, peak)
        # Unwind exactly this span even if an exception skipped children.
        while tracer._stack and tracer._stack[-1] is not span:
            tracer._stack.pop()
        if tracer._stack:
            tracer._stack.pop()
        return False


class Tracer:
    """Collector for one run's span tree, manifests, and metric snapshot."""

    __slots__ = ("name", "memory", "roots", "manifests", "_stack")

    def __init__(self, name: str = "run", *, memory: bool = False) -> None:
        self.name = name
        self.memory = memory
        self.roots: list[Span] = []
        self.manifests: list["RunManifest"] = []
        self._stack: list[Span] = []

    def span(self, name: str) -> _SpanContext:
        """Open a nested span; use as ``with tracer.span("stage"):``."""
        return _SpanContext(self, Span(name))

    def add(self, key: str, value: float = 1) -> None:
        """Accumulate a counter on the innermost open span (no-op if none)."""
        if self._stack:
            self._stack[-1].add(key, value)

    def current(self) -> Span | None:
        """Return the innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def records(self) -> list[dict[str, object]]:
        """Flatten the run into JSONL-ready records.

        Order: one header, every span depth-first, every captured
        manifest, then the final metrics snapshot.
        """
        from repro.obs.metrics import REGISTRY

        out: list[dict[str, object]] = [
            {"type": "trace", "name": self.name, "version": 1}
        ]

        def walk(span: Span, prefix: str, depth: int) -> None:
            path = f"{prefix}/{span.name}" if prefix else span.name
            out.append(span.to_dict(path=path, depth=depth))
            for child in span.children:
                walk(child, path, depth + 1)

        for root in self.roots:
            walk(root, "", 0)
        for manifest in self.manifests:
            out.append({"type": "manifest", **manifest.to_dict()})
        out.append({"type": "metrics", "metrics": REGISTRY.snapshot()})
        return out

    def to_jsonl(self) -> str:
        """Serialize :meth:`records` as one JSON object per line."""
        return (
            "\n".join(
                json.dumps(record, sort_keys=True) for record in self.records()
            )
            + "\n"
        )

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the JSONL serialization to ``path`` and return it."""
        target = Path(path)
        target.write_text(self.to_jsonl(), encoding="utf-8")
        return target

    def render_text(self) -> str:
        """Render the span tree as an indented, human-readable summary."""
        lines = [f"trace: {self.name}"]

        def fmt(span: Span, depth: int) -> None:
            wall = (
                f"{span.wall_seconds:9.4f}s"
                if span.wall_seconds is not None
                else "     open"
            )
            extras = []
            if span.memory_peak_bytes is not None:
                extras.append(f"peak {span.memory_peak_bytes / 1024:.0f} KiB")
            if span.status not in ("ok", "open"):
                extras.append(span.status)
            for key in sorted(span.counters):
                extras.append(f"{key}={span.counters[key]:g}")
            suffix = f"  [{', '.join(extras)}]" if extras else ""
            lines.append(f"  {'  ' * depth}{span.name:<40} {wall}{suffix}")
            for child in span.children:
                fmt(child, depth + 1)

        for root in self.roots:
            fmt(root, 0)
        if self.manifests:
            lines.append(f"  manifests: {len(self.manifests)}")
        return "\n".join(lines) + "\n"
