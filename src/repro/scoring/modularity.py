"""Modularity scoring with configurable null models.

The paper's fourth scoring function (eq. 4):

.. math:: f(C) = \\frac{1}{2m} (m_C - E(m_C))

where :math:`E(m_C)` is the expected number of internal edges of :math:`C`
in a null model with the same degree sequence (Newman–Girvan).  Two
expectation strategies are provided:

* **analytic** — the closed-form configuration-model expectation
  (:math:`\\sum_{u \\ne v \\in C} d_u d_v / 2m` summed over unordered pairs
  for undirected graphs, the out×in analogue for directed ones);
* **sampled** — the paper's literal procedure: generate randomized graphs
  with the same degree sequence via Viger–Latapy (undirected) or the
  directed configuration model, and average the realized :math:`m_C`.

Both strategies agree in expectation; the sampled path exists to mirror
the paper and to support the null-model ablation bench (A2 in DESIGN.md).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from repro.graph.convert import integer_index
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.nullmodel.configuration import directed_configuration_model
from repro.nullmodel.viger_latapy import viger_latapy_graph
from repro.exceptions import SamplingError
from repro.nullmodel.configuration import configuration_model
from repro.sampling.seeds import spawn_generators
from repro.scoring.base import GroupStats
from repro.scoring.columnar import GroupStatsBatch, scalar_score_column


def _generate_null_graph(
    payload: tuple[str, list[int], list[int] | None, str, float],
    seed_pair: tuple[int, int],
) -> Graph | DiGraph:
    """Realize one null-model sample from its private seed pair.

    ``seed_pair`` is (primary seed, fallback seed) drawn from the
    sample's own child stream — the fallback seed is consumed only when
    Viger-Latapy fails and ``method="auto"`` degrades to the
    configuration model, so consuming it never shifts other samples.
    Module-level so the parallel ensemble path can ship it to a pool.
    """
    kind, degrees, out_degrees, method, shuffle_factor = payload
    primary, fallback = seed_pair
    if kind == "directed":
        assert out_degrees is not None
        return directed_configuration_model(
            degrees, out_degrees, seed=primary
        )
    if method in ("auto", "viger_latapy"):
        try:
            return viger_latapy_graph(
                degrees, seed=primary, shuffle_factor=shuffle_factor
            )
        except SamplingError:
            if method == "viger_latapy":
                raise
            return configuration_model(degrees, seed=fallback)
    return configuration_model(degrees, seed=primary)


def _null_worker_init() -> None:
    """Silence observability in forked null-model workers.

    A forked worker inherits the parent's tracer; letting it write would
    interleave records into the parent's trace stream.
    """
    from repro.obs._runtime import STATE

    STATE.enabled = False
    STATE.tracer = None
    STATE.owns_tracemalloc = False

Node = Hashable

__all__ = ["Modularity", "NullModelEnsemble", "analytic_expected_internal_edges"]


def analytic_expected_internal_edges(stats: GroupStats) -> float:
    """Closed-form configuration-model expectation of :math:`m_C`.

    Undirected: each unordered pair ``{u, v}`` inside C is an edge with
    probability ``d_u d_v / 2m``.  Directed: each ordered pair ``(u, v)``
    is an edge with probability ``d_out(u) d_in(v) / m``.
    """
    if stats.m == 0:
        return 0.0
    if stats.directed:
        out_sum = float(stats.member_out_degrees.sum())
        in_sum = float(stats.member_in_degrees.sum())
        self_pairs = float(
            (stats.member_out_degrees * stats.member_in_degrees).sum()
        )
        return (out_sum * in_sum - self_pairs) / stats.m
    degrees = stats.member_degrees.astype(np.float64)
    degree_sum = float(degrees.sum())
    square_sum = float((degrees * degrees).sum())
    return (degree_sum * degree_sum - square_sum) / (4.0 * stats.m)


def _expected_internal_edges_batch(batch: GroupStatsBatch) -> np.ndarray:
    """Per-group configuration-model expectation of :math:`m_C`.

    The batch analogue of :func:`analytic_expected_internal_edges`: the
    per-group degree sums are integer reductions (exact in any order for
    the magnitudes a graph can produce), and the closing float
    arithmetic repeats the scalar path's operations elementwise, so the
    column is bitwise identical to the scalar expectations.
    """
    if batch.m == 0:
        return np.zeros(len(batch), dtype=np.float64)
    if batch.directed:
        out_sum = batch.group_sum(batch.member_out_degrees).astype(np.float64)
        in_sum = batch.group_sum(batch.member_in_degrees).astype(np.float64)
        self_pairs = batch.group_sum(
            batch.member_out_degrees * batch.member_in_degrees
        ).astype(np.float64)
        return (out_sum * in_sum - self_pairs) / batch.m
    degree_sum = batch.group_sum(batch.member_degrees).astype(np.float64)
    square_sum = batch.group_sum(
        batch.member_degrees * batch.member_degrees
    ).astype(np.float64)
    return (degree_sum * degree_sum - square_sum) / (4.0 * batch.m)


class NullModelEnsemble:
    """A cache of randomized same-degree-sequence graphs for one base graph.

    Generating null graphs is the expensive part of sampled Modularity, so
    the ensemble is built once per graph and shared across all groups
    scored against it.
    """

    def __init__(
        self,
        graph: Graph | DiGraph,
        *,
        samples: int = 3,
        method: str = "auto",
        seed: int | None = None,
        shuffle_factor: float = 1.0,
        jobs: int | None = None,
    ) -> None:
        if samples < 1:
            raise ValueError("need at least one null-model sample")
        self.method = method
        index_of, _ = integer_index(graph)
        self._index_of = index_of
        # Every sample owns an independent child stream (including any
        # Viger-Latapy -> configuration fallback draws), so serial and
        # parallel generation realize identical null graphs.
        streams = spawn_generators(seed, samples)
        if graph.is_directed:
            if method not in ("auto", "configuration"):
                raise ValueError(
                    "directed graphs support only the configuration null model"
                )
            in_degrees = [len(graph._pred[v]) for v in graph]  # noqa: SLF001
            out_degrees = [len(graph._succ[v]) for v in graph]  # noqa: SLF001
            payloads = [
                ("directed", in_degrees, out_degrees, method, shuffle_factor)
            ] * samples
        else:
            if method not in ("auto", "viger_latapy", "configuration"):
                raise ValueError(f"unknown null-model method {method!r}")
            degrees = [len(graph._adj[v]) for v in graph]  # noqa: SLF001
            payloads = [
                ("undirected", degrees, None, method, shuffle_factor)
            ] * samples
        seed_pairs = [
            (int(stream.integers(2**32)), int(stream.integers(2**32)))
            for stream in streams
        ]
        from repro.engine.parallel import resolve_jobs

        jobs = resolve_jobs(jobs)
        if jobs > 1 and samples > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                max_workers=min(jobs, samples),
                initializer=_null_worker_init,
            ) as pool:
                self._null_graphs = list(
                    pool.map(
                        _generate_null_graph,
                        payloads,
                        seed_pairs,
                        chunksize=1,
                    )
                )
        else:
            self._null_graphs = [
                _generate_null_graph(payload, pair)
                for payload, pair in zip(payloads, seed_pairs)
            ]

    def __len__(self) -> int:
        return len(self._null_graphs)

    def expected_internal_edges(self, members: Iterable[Node]) -> float:
        """Average :math:`m_C` of ``members`` over the sampled null graphs."""
        ids = {self._index_of[node] for node in members}
        totals = 0.0
        for null in self._null_graphs:
            if null.is_directed:
                inside = sum(
                    len(null._succ[v] & ids) for v in ids  # noqa: SLF001
                )
            else:
                inside = sum(
                    len(null._adj[v] & ids) for v in ids  # noqa: SLF001
                ) // 2
            totals += inside
        return totals / len(self._null_graphs)


class Modularity:
    """Per-group Modularity :math:`(m_C - E(m_C)) / 2m` (paper eq. 4).

    ``expectation='analytic'`` (default) uses the closed-form
    configuration-model value; ``expectation='sampled'`` requires an
    ``ensemble`` built on the same graph the scored groups live in.
    """

    name = "modularity"

    def __init__(
        self,
        expectation: str = "analytic",
        ensemble: NullModelEnsemble | None = None,
    ) -> None:
        if expectation not in ("analytic", "sampled"):
            raise ValueError(f"unknown expectation strategy {expectation!r}")
        if expectation == "sampled" and ensemble is None:
            raise ValueError("sampled expectation requires a NullModelEnsemble")
        self.expectation = expectation
        self.ensemble = ensemble

    def __call__(self, stats: GroupStats) -> float:
        if stats.m == 0:
            return 0.0
        if self.expectation == "analytic":
            expected = analytic_expected_internal_edges(stats)
        else:
            assert self.ensemble is not None
            expected = self.ensemble.expected_internal_edges(stats.members)
        return (stats.m_C - expected) / (2.0 * stats.m)

    def score_batch(self, batch: GroupStatsBatch) -> np.ndarray:
        """Score a columnar batch (bitwise identical to ``__call__``).

        Analytic expectations vectorize (integer degree reductions plus
        elementwise float closing arithmetic); the sampled strategy
        probes the null ensemble per group and stays on the scalar
        path.
        """
        if self.expectation != "analytic":
            return scalar_score_column(self, batch)
        if batch.m == 0:
            return np.zeros(len(batch), dtype=np.float64)
        expected = _expected_internal_edges_batch(batch)
        return (batch.m_C - expected) / (2.0 * batch.m)
