"""Community scoring functions (paper section V + Yang–Leskovec catalogue)."""

from repro.scoring.base import GroupStats, ScoringFunction, compute_group_stats
from repro.scoring.columnar import (
    GroupStatsBatch,
    scalar_score_column,
    score_function_column,
    score_matrix,
    score_stats_columns,
)
from repro.scoring.combined import (
    AverageOutDegreeFraction,
    Conductance,
    FlakeOutDegreeFraction,
    MaxOutDegreeFraction,
    NormalizedCut,
    Separability,
)
from repro.scoring.external import Expansion, RatioCut, ScaledRatioCut
from repro.scoring.internal import (
    AverageDegree,
    EdgesInside,
    FractionOverMedianDegree,
    InternalDensity,
    TriangleParticipationRatio,
)
from repro.scoring.modularity import (
    Modularity,
    NullModelEnsemble,
    analytic_expected_internal_edges,
)
from repro.scoring.registry import (
    PAPER_FUNCTION_NAMES,
    ScoreTable,
    make_all_functions,
    make_function,
    make_paper_functions,
    score_group,
    score_groups,
)

__all__ = [
    "GroupStats",
    "GroupStatsBatch",
    "ScoringFunction",
    "compute_group_stats",
    "scalar_score_column",
    "score_function_column",
    "score_matrix",
    "score_stats_columns",
    "AverageDegree",
    "InternalDensity",
    "EdgesInside",
    "FractionOverMedianDegree",
    "TriangleParticipationRatio",
    "RatioCut",
    "ScaledRatioCut",
    "Expansion",
    "Conductance",
    "NormalizedCut",
    "MaxOutDegreeFraction",
    "AverageOutDegreeFraction",
    "FlakeOutDegreeFraction",
    "Separability",
    "Modularity",
    "NullModelEnsemble",
    "analytic_expected_internal_edges",
    "PAPER_FUNCTION_NAMES",
    "ScoreTable",
    "make_function",
    "make_paper_functions",
    "make_all_functions",
    "score_group",
    "score_groups",
]
