"""Modularity tests: analytic expectation, sampled null ensemble, and
agreement with networkx's partition modularity."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.scoring.base import compute_group_stats
from repro.scoring.modularity import (
    Modularity,
    NullModelEnsemble,
    analytic_expected_internal_edges,
)


class TestAnalyticExpectation:
    def test_undirected_closed_form(self, two_cliques_graph):
        stats = compute_group_stats(two_cliques_graph, [0, 1, 2, 3])
        degrees = stats.member_degrees.astype(float)
        expected = (degrees.sum() ** 2 - (degrees**2).sum()) / (4 * stats.m)
        assert analytic_expected_internal_edges(stats) == pytest.approx(expected)

    def test_directed_closed_form(self, small_digraph):
        stats = compute_group_stats(small_digraph, ["a", "b"])
        value = analytic_expected_internal_edges(stats)
        outs = stats.member_out_degrees.astype(float)
        ins = stats.member_in_degrees.astype(float)
        expected = (outs.sum() * ins.sum() - (outs * ins).sum()) / stats.m
        assert value == pytest.approx(expected)

    def test_empty_graph_zero(self):
        graph = Graph()
        graph.add_nodes_from([1, 2])
        stats = compute_group_stats(graph, [1, 2])
        assert analytic_expected_internal_edges(stats) == 0.0

    def test_partition_sum_relates_to_newman_modularity(self, two_cliques_graph):
        """Partition sum of paper scores = (Newman Q + self-pair term) / 2.

        The analytic expectation excludes self-pairs (a simple graph has no
        self-loops), while Newman's quadratic form includes them; the exact
        correction is ``sum_v d(v)^2 / (4 m^2)``.
        """
        oracle = nx.Graph()
        oracle.add_nodes_from(two_cliques_graph.nodes)
        oracle.add_edges_from(two_cliques_graph.edges)
        partition = [{0, 1, 2, 3}, {4, 5, 6, 7}]
        newman = nx.community.modularity(oracle, partition)
        m = two_cliques_graph.number_of_edges()
        self_pairs = sum(
            two_cliques_graph.degree[v] ** 2 for v in two_cliques_graph
        ) / (4.0 * m * m)
        function = Modularity()
        total = sum(
            function(compute_group_stats(two_cliques_graph, block))
            for block in partition
        )
        assert 2 * total == pytest.approx(newman + self_pairs, abs=1e-9)


class TestModularityFunction:
    def test_clique_positive(self, two_cliques_graph):
        stats = compute_group_stats(two_cliques_graph, [0, 1, 2, 3])
        assert Modularity()(stats) > 0

    def test_anti_community_negative(self, two_cliques_graph):
        # A spread-out set with no internal edges scores negative.
        stats = compute_group_stats(two_cliques_graph, [0, 4])
        assert Modularity()(stats) < 0

    def test_empty_graph_zero(self):
        graph = Graph()
        graph.add_nodes_from([1])
        stats = compute_group_stats(graph, [1])
        assert Modularity()(stats) == 0.0

    def test_invalid_expectation_rejected(self):
        with pytest.raises(ValueError):
            Modularity(expectation="bogus")

    def test_sampled_requires_ensemble(self):
        with pytest.raises(ValueError):
            Modularity(expectation="sampled")


class TestNullModelEnsemble:
    def test_preserves_degree_sequence_undirected(self, two_cliques_graph):
        ensemble = NullModelEnsemble(two_cliques_graph, samples=2, seed=0)
        original = sorted(two_cliques_graph.degree.values())
        for null in ensemble._null_graphs:
            assert sorted(null.degree.values()) == original

    def test_preserves_in_out_sequences_directed(self, small_digraph):
        ensemble = NullModelEnsemble(small_digraph, samples=2, seed=0)
        original_in = sorted(small_digraph.in_degree.values())
        original_out = sorted(small_digraph.out_degree.values())
        for null in ensemble._null_graphs:
            assert sorted(null.in_degree.values()) == original_in
            assert sorted(null.out_degree.values()) == original_out

    def test_sampled_expectation_tracks_analytic(self, two_cliques_graph):
        ensemble = NullModelEnsemble(two_cliques_graph, samples=20, seed=1)
        members = [0, 1, 2, 3]
        stats = compute_group_stats(two_cliques_graph, members)
        sampled = ensemble.expected_internal_edges(members)
        analytic = analytic_expected_internal_edges(stats)
        # Connected null graphs are slightly constrained; agree within ~50%.
        assert sampled == pytest.approx(analytic, rel=0.5)

    def test_sampled_modularity_runs(self, two_cliques_graph):
        ensemble = NullModelEnsemble(two_cliques_graph, samples=3, seed=2)
        function = Modularity(expectation="sampled", ensemble=ensemble)
        stats = compute_group_stats(two_cliques_graph, [0, 1, 2, 3])
        assert function(stats) > 0

    def test_zero_samples_rejected(self, two_cliques_graph):
        with pytest.raises(ValueError):
            NullModelEnsemble(two_cliques_graph, samples=0)

    def test_directed_restricted_to_configuration(self, small_digraph):
        with pytest.raises(ValueError):
            NullModelEnsemble(small_digraph, method="viger_latapy")

    def test_unknown_method_rejected(self, two_cliques_graph):
        with pytest.raises(ValueError):
            NullModelEnsemble(two_cliques_graph, method="bogus")

    def test_len_reports_samples(self, two_cliques_graph):
        assert len(NullModelEnsemble(two_cliques_graph, samples=4, seed=0)) == 4
