"""Degree statistics, reciprocity and assortativity tests."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.degrees import (
    average_degree,
    average_in_degree,
    average_out_degree,
    degree_assortativity,
    degree_histogram,
    degree_sequence,
    in_degree_sequence,
    out_degree_sequence,
    reciprocity,
)
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph


class TestSequences:
    def test_degree_sequence_undirected(self, triangle_graph):
        assert sorted(degree_sequence(triangle_graph)) == [1, 2, 2, 3]

    def test_degree_sequence_directed_total(self, small_digraph):
        assert sorted(degree_sequence(small_digraph)) == [1, 2, 2, 3]

    def test_in_out_sequences(self, small_digraph):
        assert in_degree_sequence(small_digraph).sum() == 4
        assert out_degree_sequence(small_digraph).sum() == 4

    def test_in_sequence_requires_directed(self, triangle_graph):
        with pytest.raises(ValueError):
            in_degree_sequence(triangle_graph)
        with pytest.raises(ValueError):
            out_degree_sequence(triangle_graph)

    def test_histogram(self, triangle_graph):
        histogram = degree_histogram(degree_sequence(triangle_graph))
        assert histogram == {1: 1, 2: 2, 3: 1}


class TestAverages:
    def test_average_degree_undirected(self, triangle_graph):
        assert average_degree(triangle_graph) == pytest.approx(2.0)

    def test_average_degree_directed_counts_both_endpoints(self, small_digraph):
        assert average_degree(small_digraph) == pytest.approx(2.0)

    def test_average_in_out_equal(self, small_digraph):
        assert average_in_degree(small_digraph) == average_out_degree(small_digraph)
        assert average_in_degree(small_digraph) == pytest.approx(1.0)

    def test_empty_graph(self):
        assert average_degree(Graph()) == 0.0
        assert average_in_degree(DiGraph()) == 0.0

    def test_requires_directed(self, triangle_graph):
        with pytest.raises(ValueError):
            average_in_degree(triangle_graph)


class TestReciprocity:
    def test_fully_reciprocal(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3), (3, 2)])
        assert reciprocity(graph) == 1.0

    def test_no_reciprocity(self):
        graph = DiGraph([(1, 2), (2, 3)])
        assert reciprocity(graph) == 0.0

    def test_partial(self, small_digraph):
        assert reciprocity(small_digraph) == pytest.approx(0.5)

    def test_matches_networkx(self):
        oracle = nx.gnp_random_graph(30, 0.1, seed=2, directed=True)
        graph = DiGraph()
        graph.add_nodes_from(oracle.nodes)
        graph.add_edges_from(oracle.edges)
        assert reciprocity(graph) == pytest.approx(nx.reciprocity(oracle))

    def test_empty_graph_zero(self):
        assert reciprocity(DiGraph()) == 0.0

    def test_requires_directed(self, triangle_graph):
        with pytest.raises(ValueError):
            reciprocity(triangle_graph)


class TestAssortativity:
    def test_matches_networkx_undirected(self):
        oracle = nx.gnp_random_graph(60, 0.08, seed=3)
        graph = Graph()
        graph.add_nodes_from(oracle.nodes)
        graph.add_edges_from(oracle.edges)
        assert degree_assortativity(graph) == pytest.approx(
            nx.degree_assortativity_coefficient(oracle), abs=1e-9
        )

    def test_star_is_disassortative(self):
        graph = Graph([(0, i) for i in range(1, 8)])
        assert degree_assortativity(graph) < 0

    def test_constant_degree_graph_returns_zero(self):
        cycle = Graph([(i, (i + 1) % 6) for i in range(6)])
        assert degree_assortativity(cycle) == 0.0

    def test_empty_graph_returns_zero(self):
        assert degree_assortativity(Graph()) == 0.0
