"""Table III — side-by-side comparison of the four evaluated data sets.

Paper claims reproduced: edge type (directed circles vs undirected
communities), the *relative* vertex/edge ordering of the corpora, and
hundreds of groups per corpus.
"""

from repro.analysis.report import render_table
from repro.data.datasets import PAPER_DATASETS
from repro.synth.paper_datasets import load_all_paper_datasets


def test_table3_dataset_summary(benchmark, all_datasets):
    rows = benchmark(lambda: [dataset.summary_row() for dataset in all_datasets])

    paper_rows = [
        {
            "dataset": f"PAPER {spec.name}",
            "vertices": spec.vertices,
            "edges": spec.edges,
            "type": "directed" if spec.directed else "undirected",
            "structure": spec.structure.capitalize(),
            "num_groups": spec.num_groups,
        }
        for spec in PAPER_DATASETS.values()
    ]
    print()
    print(render_table(paper_rows, title="Table III (paper)"))
    print()
    print(render_table(rows, title="Table III (measured, synthetic corpora)"))

    by_name = {row["dataset"]: row for row in rows}
    # Edge types and structures match the paper exactly.
    for name, spec in PAPER_DATASETS.items():
        assert by_name[name]["type"] == ("directed" if spec.directed else "undirected")
        assert by_name[name]["structure"] == spec.structure.capitalize()
    # Relative size ordering: community corpora are the big graphs,
    # Google+ is denser than Twitter, Orkut has the most edges.
    assert by_name["livejournal"]["vertices"] > by_name["google_plus"]["vertices"]
    assert by_name["orkut"]["vertices"] > by_name["twitter"]["vertices"]
    assert by_name["orkut"]["edges"] == max(row["edges"] for row in rows)
    assert by_name["google_plus"]["edges"] > by_name["twitter"]["edges"]
    # Every corpus carries a meaningful group population.
    assert all(row["num_groups"] >= 50 for row in rows)


def test_dataset_build_cost(benchmark):
    """Measures the cost of regenerating all four corpora from scratch."""
    datasets = benchmark.pedantic(
        lambda: load_all_paper_datasets(), rounds=1, iterations=1
    )
    assert len(datasets) == 4
