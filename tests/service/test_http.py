"""Unit tests for the hand-rolled HTTP/1.1 layer (no server needed —
``read_request`` is driven with a fed ``StreamReader``)."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.http import (
    MAX_BODY_BYTES,
    HttpError,
    Request,
    Response,
    error_response,
    json_response,
    parse_query,
    read_request,
)


def parse(wire: bytes):
    """Run ``read_request`` over literal wire bytes."""

    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(wire)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(main())


class TestReadRequest:
    def test_minimal_get(self):
        request = parse(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/health"
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.keep_alive

    def test_query_and_percent_decoding(self):
        request = parse(b"GET /v1/x?groups=a%2Cb&f=1+2 HTTP/1.1\r\n\r\n")
        assert request.query == {"groups": "a,b", "f": "1 2"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close_header(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_post_with_body(self):
        request = parse(
            b"POST /v1/x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert request.body == b"abcd"

    def test_post_without_length_is_411(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST /v1/x HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 411

    def test_chunked_encoding_is_501(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"POST /v1/x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert excinfo.value.status == 501

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                f"POST /v1/x HTTP/1.1\r\n"
                f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
        assert excinfo.value.status == 413

    @pytest.mark.parametrize(
        "wire",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ],
    )
    def test_malformed_requests_are_400(self, wire):
        with pytest.raises(HttpError) as excinfo:
            parse(wire)
        assert excinfo.value.status == 400

    def test_header_name_lowercased(self):
        request = parse(b"GET / HTTP/1.1\r\nIf-None-Match: \"abc\"\r\n\r\n")
        assert request.headers["if-none-match"] == '"abc"'


class TestRequestJson:
    def test_malformed_json_body_is_400(self):
        request = Request(
            method="POST", target="/", path="/", query={}, headers={},
            body=b"{nope",
        )
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponseRender:
    def test_body_and_length(self):
        wire = json_response(200, {"a": 1}).render(keep_alive=True)
        head, _, body = wire.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert body == b'{"a":1}'
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Connection: keep-alive" in head

    def test_304_has_no_body_or_content_type(self):
        wire = Response(304, headers={"ETag": '"k"'}).render(keep_alive=True)
        assert wire.endswith(b"\r\n\r\n")
        assert b"Content-Length: 0" in wire
        assert b"Content-Type" not in wire
        assert b'ETag: "k"' in wire

    def test_error_envelope(self):
        response = error_response(404, "nope")
        assert response.body == (
            b'{"error":{"message":"nope","status":404}}'
        )

    def test_connection_close(self):
        wire = json_response(200, {}).render(keep_alive=False)
        assert b"Connection: close" in wire


def test_parse_query_duplicates_last_wins():
    assert parse_query("a=1&a=2&b=") == {"a": "2", "b": ""}
