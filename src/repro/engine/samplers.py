"""CSR-native vertex-set samplers over a frozen :class:`AnalysisContext`.

These reimplement the paper's random-walk baseline (Fig. 5) and the
uniform/BFS-ball ablation samplers on integer vertex ids: the walk state
is a boolean mask plus CSR row slices, and node labels appear only at the
boundary (the returned sets).

**Replay guarantee.**  Each sampler consumes randomness exactly like its
label-level counterpart in :mod:`repro.sampling` — ``random.Random``
draws depend only on candidate-list *lengths*, so ordering candidate ids
by :attr:`~repro.engine.context.AnalysisContext.label_rank` (the
:func:`~repro.graph.convert.stable_sorted` order of their labels) makes
every draw pick the same vertex.  Same seed, same sample, whichever
substrate runs it; ``tests/engine/test_samplers.py`` pins this.

**Replicate independence.**  :func:`sample_matched_sets` derives one
child seed per replicate (:func:`repro.sampling.seeds.spawn_child_seeds`)
instead of threading a single RNG through the loop, so replicate ``i``'s
stream does not depend on replicates ``0..i-1`` — which is what lets the
parallel executor hand replicates to workers and still produce the exact
serial output.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Hashable, Sequence

import numpy as np

from repro import obs
from repro.engine.cache import ResultCache
from repro.engine.context import AnalysisContext
from repro.engine.parallel import ParallelExecutor, resolve_jobs
from repro.exceptions import SamplingError
from repro.obs import instruments
from repro.sampling.seeds import spawn_child_seeds

Node = Hashable

__all__ = [
    "random_walk_set",
    "bfs_ball_set",
    "uniform_vertex_set",
    "ENGINE_SAMPLERS",
    "SAMPLER_IDS",
    "sample_matched_sets",
]


def _resolve_rng(seed: int | random.Random | None) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def _check_size(context: AnalysisContext, size: int) -> int:
    if size <= 0:
        raise ValueError("sample size must be positive")
    n = context.num_vertices
    if n < size:
        raise SamplingError(f"graph has {n} vertices, cannot sample {size}")
    return n


def _id_labels(context: AnalysisContext, ids: np.ndarray) -> set[Node]:
    nodes = context.csr.nodes
    return {nodes[int(i)] for i in ids}


def _random_walk_ids(
    context: AnalysisContext,
    size: int,
    rng: random.Random,
    *,
    max_steps_factor: int = 200,
) -> np.ndarray:
    """Id-level random walk; returns the collected ids sorted ascending."""
    n = _check_size(context, size)
    indptr, indices = context.csr.indptr, context.csr.indices
    rank = context.label_rank
    population = range(n)
    collected = np.zeros(n, dtype=bool)
    current = rng.choice(population)
    collected[current] = True
    count = 1
    steps = 0
    restarts = 0
    budget = max_steps_factor * size
    while count < size:
        steps += 1
        if steps > budget:
            raise SamplingError(
                f"random walk exhausted {budget} steps collecting "
                f"{count}/{size} vertices"
            )
        row = indices[indptr[current] : indptr[current + 1]]
        fresh = row[~collected[row]]
        if fresh.size == 0:
            restarts += 1
            current = rng.choice(population)
            if not collected[current]:
                collected[current] = True
                count += 1
            continue
        # label_rank ordering replays the legacy stable_sorted choice.
        fresh = fresh[np.argsort(rank[fresh])]
        current = int(rng.choice(fresh))
        collected[current] = True
        count += 1
    instruments.WALK_STEPS.inc(steps)
    instruments.WALK_RESTARTS.inc(restarts)
    return np.flatnonzero(collected)


def _bfs_ball_ids(
    context: AnalysisContext, size: int, rng: random.Random
) -> np.ndarray:
    """Id-level BFS ball; returns the collected ids sorted ascending."""
    n = _check_size(context, size)
    indptr, indices = context.csr.indptr, context.csr.indices
    rank = context.label_rank
    collected = np.zeros(n, dtype=bool)
    count = 0
    queue: deque[int] = deque()
    while count < size:
        if not queue:
            remaining = np.flatnonzero(~collected)
            root = int(rng.choice(remaining))
            collected[root] = True
            count += 1
            queue.append(root)
            if count >= size:
                break
        vertex = queue.popleft()
        row = indices[indptr[vertex] : indptr[vertex + 1]]
        fresh_ids = row[~collected[row]]
        fresh = fresh_ids[np.argsort(rank[fresh_ids])].tolist()
        rng.shuffle(fresh)
        for other in fresh:
            if count >= size:
                break
            collected[other] = True
            count += 1
            queue.append(other)
    return np.flatnonzero(collected)


def _uniform_ids(
    context: AnalysisContext, size: int, rng: random.Random
) -> np.ndarray:
    """Id-level uniform draw; returns the drawn ids sorted ascending."""
    n = _check_size(context, size)
    drawn = np.asarray(rng.sample(range(n), size), dtype=np.int64)
    drawn.sort()
    return drawn


def random_walk_set(
    context: AnalysisContext,
    size: int,
    *,
    seed: int | random.Random | None = None,
    max_steps_factor: int = 200,
) -> set[Node]:
    """Sample ``size`` distinct vertices by random walk with restarts.

    CSR-native equivalent of
    :func:`repro.sampling.random_walk.random_walk_set` (same seed, same
    sample).  Walks ignore edge direction; restarts draw a uniform vertex
    whenever no uncollected neighbour remains.
    """
    context = AnalysisContext.ensure(context)
    ids = _random_walk_ids(
        context, size, _resolve_rng(seed), max_steps_factor=max_steps_factor
    )
    return _id_labels(context, ids)


def bfs_ball_set(
    context: AnalysisContext,
    size: int,
    *,
    seed: int | random.Random | None = None,
) -> set[Node]:
    """Sample a BFS ball of ``size`` vertices around a random root.

    CSR-native equivalent of
    :func:`repro.sampling.random_sets.bfs_ball_set`; restarts from a fresh
    random root whenever a component is exhausted.
    """
    context = AnalysisContext.ensure(context)
    ids = _bfs_ball_ids(context, size, _resolve_rng(seed))
    return _id_labels(context, ids)


def uniform_vertex_set(
    context: AnalysisContext,
    size: int,
    *,
    seed: int | random.Random | None = None,
) -> set[Node]:
    """Sample ``size`` vertices uniformly without replacement.

    CSR-native equivalent of
    :func:`repro.sampling.random_sets.uniform_vertex_set`.
    """
    context = AnalysisContext.ensure(context)
    ids = _uniform_ids(context, size, _resolve_rng(seed))
    return _id_labels(context, ids)


#: CSR-native sampler registry (name -> callable over a context).
ENGINE_SAMPLERS = {
    "uniform": uniform_vertex_set,
    "bfs_ball": bfs_ball_set,
    "random_walk": random_walk_set,
}

#: Id-level variants (name -> callable(context, size, rng) -> id array);
#: the parallel workers run these — labels never cross the boundary.
SAMPLER_IDS = {
    "uniform": _uniform_ids,
    "bfs_ball": _bfs_ball_ids,
    "random_walk": _random_walk_ids,
}


def sample_matched_sets(
    context: AnalysisContext,
    sizes: Sequence[int],
    sampler: str,
    *,
    seed: int | None = None,
    jobs: int | None = None,
    cache: "ResultCache | str | bool | None" = None,
    executor: ParallelExecutor | None = None,
) -> list[set[Node]]:
    """One vertex set per entry of ``sizes`` using a named sampler.

    Drop-in replacement for
    :func:`repro.sampling.random_sets.sample_matched_sets` that shares the
    frozen context across all draws.  Replicate ``i`` owns child stream
    ``i`` of ``seed``, so serial, parallel (``jobs``/``executor``) and
    legacy label-level execution all emit identical sets.  Seeded draws
    may be served from ``cache``; ``forest_fire`` (not yet CSR-native)
    falls through to the legacy label-level implementation, serially.
    """
    context = AnalysisContext.ensure(context)
    sizes = [int(size) for size in sizes]
    if sampler not in ENGINE_SAMPLERS and sampler != "forest_fire":
        known = ", ".join(sorted([*ENGINE_SAMPLERS, "forest_fire"]))
        raise KeyError(f"unknown sampler {sampler!r}; known: {known}")
    with obs.span("sampler.matched_sets"):
        sets = _matched_sets(
            context, sizes, sampler, seed, jobs, cache, executor
        )
        instruments.SETS_SAMPLED.inc(len(sets), label=sampler)
        obs.add("sets", len(sets))
    return sets


def _matched_sets(
    context: AnalysisContext,
    sizes: list[int],
    sampler: str,
    seed: int | None,
    jobs: int | None,
    cache: "ResultCache | str | bool | None",
    executor: ParallelExecutor | None,
) -> list[set[Node]]:
    store = ResultCache.resolve(cache)
    key = None
    if store is not None and seed is not None:
        key = store.matched_sets_key(
            context, sampler=sampler, seed=seed, sizes=sizes
        )
        cached = store.load_id_sets(key)
        if cached is not None:
            return [_id_labels(context, ids) for ids in cached]

    child_seeds = spawn_child_seeds(seed, len(sizes))
    own_executor = False
    if executor is None and sampler in SAMPLER_IDS:
        effective = resolve_jobs(jobs)
        if effective > 1:
            executor = ParallelExecutor(context, effective)
            own_executor = True
    try:
        if (
            executor is not None
            and executor.active
            and sampler in SAMPLER_IDS
        ):
            id_lists = executor.sample_ids(sampler, sizes, child_seeds)
        elif sampler in SAMPLER_IDS:
            function = SAMPLER_IDS[sampler]
            id_lists = [
                function(context, size, random.Random(child))
                for size, child in zip(sizes, child_seeds)
            ]
        else:  # forest_fire: label-level legacy implementation.
            from repro.sampling.random_sets import forest_fire_set

            sets = [
                forest_fire_set(context.graph, size, seed=child)
                for size, child in zip(sizes, child_seeds)
            ]
            if key is not None and store is not None:
                store.store_id_sets(
                    key,
                    [
                        np.sort(context.vertex_ids(list(members)))
                        for members in sets
                    ],
                )
            return sets
    finally:
        if own_executor and executor is not None:
            executor.close()
    if key is not None and store is not None:
        store.store_id_sets(key, id_lists)
    return [_id_labels(context, ids) for ids in id_lists]
