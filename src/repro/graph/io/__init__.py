"""Graph input/output: edge lists, SNAP ego format, SNAP community format,
node-link JSON."""

from repro.graph.io.edgelist import iter_edges, read_edgelist, write_edgelist
from repro.graph.io.json_io import (
    graph_from_dict,
    graph_to_dict,
    read_json_graph,
    write_json_graph,
)
from repro.graph.io.snap_community import (
    read_communities,
    top_k_by_size,
    write_communities,
)
from repro.graph.io.snap_ego import (
    read_ego_directory,
    read_ego_network,
    write_ego_directory,
    write_ego_network,
)

__all__ = [
    "iter_edges",
    "read_edgelist",
    "write_edgelist",
    "read_json_graph",
    "write_json_graph",
    "graph_to_dict",
    "graph_from_dict",
    "read_communities",
    "write_communities",
    "top_k_by_size",
    "read_ego_directory",
    "read_ego_network",
    "write_ego_directory",
    "write_ego_network",
]
