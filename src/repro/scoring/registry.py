"""Scoring-function registry and batch evaluation.

The paper evaluates four scoring functions (one per family of the
Yang–Leskovec taxonomy); :data:`PAPER_FUNCTIONS` builds exactly those.
:func:`score_groups` evaluates any set of functions over many groups from
one frozen :class:`~repro.engine.AnalysisContext` — the graph is frozen
exactly once per run (or not at all if the caller passes a context), and
all group statistics come from the engine's vectorized batch pass.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.data.groups import GroupSet, VertexGroup
from repro.engine import AnalysisContext, batch_group_stats
from repro.engine.cache import ResultCache, function_tokens
from repro.engine.parallel import ParallelExecutor, resolve_jobs
from repro.obs import capture_manifest, instruments
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.scoring.base import GroupStats, ScoringFunction, compute_group_stats
from repro.scoring.columnar import score_stats_columns
from repro.scoring.combined import (
    AverageOutDegreeFraction,
    Conductance,
    FlakeOutDegreeFraction,
    MaxOutDegreeFraction,
    NormalizedCut,
    Separability,
)
from repro.scoring.external import Expansion, RatioCut, ScaledRatioCut
from repro.scoring.internal import (
    AverageDegree,
    EdgesInside,
    FractionOverMedianDegree,
    InternalDensity,
    TriangleParticipationRatio,
)
from repro.scoring.modularity import Modularity, NullModelEnsemble

Node = Hashable

__all__ = [
    "PAPER_FUNCTION_NAMES",
    "make_paper_functions",
    "make_all_functions",
    "make_function",
    "ScoreTable",
    "score_group",
    "score_groups",
]

#: The four functions of the paper's evaluation (section V), in paper order.
PAPER_FUNCTION_NAMES = ("average_degree", "ratio_cut", "conductance", "modularity")

_FACTORIES = {
    "average_degree": AverageDegree,
    "internal_density": InternalDensity,
    "edges_inside": EdgesInside,
    "fomd": FractionOverMedianDegree,
    "tpr": TriangleParticipationRatio,
    "ratio_cut": RatioCut,
    "scaled_ratio_cut": ScaledRatioCut,
    "expansion": Expansion,
    "conductance": Conductance,
    "normalized_cut": NormalizedCut,
    "max_odf": MaxOutDegreeFraction,
    "avg_odf": AverageOutDegreeFraction,
    "flake_odf": FlakeOutDegreeFraction,
    "separability": Separability,
    "modularity": Modularity,
}


def make_function(name: str, **kwargs) -> ScoringFunction:
    """Instantiate a scoring function by registry name.

    ``modularity`` accepts ``expectation=`` and ``ensemble=`` keyword
    arguments (see :class:`~repro.scoring.modularity.Modularity`).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown scoring function {name!r}; known: {known}") from None
    return factory(**kwargs)


def make_paper_functions(
    *,
    modularity_expectation: str = "analytic",
    ensemble: NullModelEnsemble | None = None,
) -> list[ScoringFunction]:
    """Build the paper's four scoring functions in paper order."""
    functions: list[ScoringFunction] = [
        AverageDegree(),
        RatioCut(),
        Conductance(),
    ]
    functions.append(
        Modularity(expectation=modularity_expectation, ensemble=ensemble)
    )
    return functions


def make_all_functions() -> list[ScoringFunction]:
    """Build every registered scoring function (analytic modularity)."""
    return [make_function(name) for name in _FACTORIES]


@dataclass
class ScoreTable:
    """Scores of many groups under many functions.

    ``columns[f]`` is a float array aligned with :attr:`group_names`.
    """

    group_names: list[str]
    group_sizes: list[int]
    columns: dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.group_names)

    def function_names(self) -> list[str]:
        """Names of the scored functions, in evaluation order."""
        return list(self.columns)

    def scores(self, function_name: str) -> np.ndarray:
        """Score array of one function (aligned with ``group_names``)."""
        return self.columns[function_name]

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-function summary statistics (mean/median/min/max)."""
        result: dict[str, dict[str, float]] = {}
        for name, values in self.columns.items():
            finite = values[np.isfinite(values)]
            if finite.size == 0:
                result[name] = {"mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0}
                continue
            result[name] = {
                "mean": float(finite.mean()),
                "median": float(np.median(finite)),
                "min": float(finite.min()),
                "max": float(finite.max()),
            }
        return result


def _needs(functions: Sequence[ScoringFunction], kind: type) -> bool:
    return any(isinstance(function, kind) for function in functions)


def score_group(
    graph: Graph | DiGraph | AnalysisContext,
    members: Iterable[Node],
    functions: Sequence[ScoringFunction],
    *,
    graph_median_degree: float | None = None,
) -> dict[str, float]:
    """Score one vertex set under ``functions`` (one adjacency sweep).

    Accepts a raw graph (legacy dict sweep) or a frozen
    :class:`~repro.engine.AnalysisContext` (CSR batch kernel).
    """
    if isinstance(graph, AnalysisContext):
        if graph_median_degree is None and _needs(
            functions, FractionOverMedianDegree
        ):
            graph_median_degree = graph.median_degree
        stats = batch_group_stats(
            graph,
            [members],
            graph_median_degree=graph_median_degree,
            include_internal_adjacency=_needs(
                functions, TriangleParticipationRatio
            ),
        )[0]
    else:
        stats = compute_group_stats(
            graph, members, graph_median_degree=graph_median_degree
        )
    return {function.name: float(function(stats)) for function in functions}


def score_groups(
    graph: Graph | DiGraph | AnalysisContext,
    groups: GroupSet | Sequence[VertexGroup],
    functions: Sequence[ScoringFunction] | None = None,
    *,
    restrict_to_graph: bool = True,
    jobs: int | None = None,
    cache: "ResultCache | str | bool | None" = None,
    executor: ParallelExecutor | None = None,
) -> ScoreTable:
    """Score every group of ``groups`` under ``functions``.

    ``functions`` defaults to the paper's four (analytic Modularity).  With
    ``restrict_to_graph`` (default) group members absent from the graph are
    dropped first — matching how the experiments treat sampled corpora —
    and groups emptied by the restriction are skipped.

    ``graph`` may be a raw :class:`Graph`/:class:`DiGraph` (frozen into an
    :class:`~repro.engine.AnalysisContext` once, here) or an existing
    context (no freeze at all); either way every group's statistics come
    from one engine batch pass over the shared CSR substrate.

    ``jobs > 1`` (or a live ``executor``) shards the batch across a
    shared-memory worker pool; shards merge in canonical group order, so
    the table is byte-identical to the serial one.  ``cache`` may serve
    the whole batch from disk, keyed on the context fingerprint, the
    functions' configuration and the groups' vertex ids.  Functions
    carrying non-scalar state (a sampled-Modularity ensemble) are scored
    serially and never cached.
    """
    if functions is None:
        functions = make_paper_functions()
    context = AnalysisContext.ensure(graph)
    with obs.span("scoring.score_groups"):
        median = (
            context.median_degree
            if _needs(functions, FractionOverMedianDegree)
            else None
        )
        include_adjacency = _needs(functions, TriangleParticipationRatio)

        names: list[str] = []
        sizes: list[int] = []
        member_lists: list[list[Node]] = []
        for group in list(groups):
            members = list(group.members)
            if restrict_to_graph:
                members = [node for node in members if node in context]
                if not members:
                    continue
            names.append(group.name)
            member_lists.append(members)

        tokens = function_tokens(functions)
        store = ResultCache.resolve(cache)
        id_lists: list[np.ndarray] | None = None
        key: str | None = None
        if store is not None and tokens is not None:
            id_lists = [
                context.vertex_ids(members) for members in member_lists
            ]
            key = store.score_groups_key(
                context,
                tokens=tokens,
                group_names=names,
                id_lists=id_lists,
                include_internal_adjacency=include_adjacency,
            )
            hit = store.load_score_table(key)
            if hit is not None:
                names, sizes, columns = hit
                _record_score_manifest(context, functions)
                return ScoreTable(
                    group_names=names, group_sizes=sizes, columns=columns
                )

        own_executor = False
        if executor is None and tokens is not None:
            effective = resolve_jobs(jobs)
            if effective > 1:
                executor = ParallelExecutor(context, effective)
                own_executor = True
        try:
            if (
                executor is not None
                and executor.active
                and tokens is not None
                and member_lists
            ):
                if id_lists is None:
                    id_lists = [
                        context.vertex_ids(members)
                        for members in member_lists
                    ]
                sizes, matrix = executor.score_groups(
                    id_lists,
                    functions,
                    graph_median_degree=median,
                    include_internal_adjacency=include_adjacency,
                )
            else:
                sizes, matrix = score_stats_columns(
                    context,
                    member_lists,
                    functions,
                    graph_median_degree=median,
                    include_internal_adjacency=include_adjacency,
                )
            columns = {
                function.name: np.ascontiguousarray(matrix[:, j])
                for j, function in enumerate(functions)
            }
        finally:
            if own_executor and executor is not None:
                executor.close()

        if key is not None and store is not None:
            store.store_score_table(key, names, sizes, columns)

        if obs.enabled():
            instruments.SCORES_COMPUTED.inc(len(names) * len(functions))
            _record_score_manifest(context, functions)

    return ScoreTable(group_names=names, group_sizes=sizes, columns=columns)


def _record_score_manifest(
    context: AnalysisContext, functions: Sequence[ScoringFunction]
) -> None:
    if not obs.enabled():
        return
    instruments.SCORE_GROUPS_CALLS.inc()
    dataset_name = context.display_name or "graph"
    obs.record_manifest(
        capture_manifest(
            "score_groups",
            contexts={dataset_name: context},
            functions=[function.name for function in functions],
        )
    )
