"""Ego networks and collections of ego networks.

The McAuley–Leskovec Google+ data set (the paper's primary corpus) is a set
of 133 *ego networks* — for each seed user (the *ego*, who shared at least
two circles) the crawl records all of the ego's contacts (*alters*), the
edges among those alters, and the ego's circles.  Joining all ego networks
yields one large connected graph (paper Fig. 1); vertices appearing in
several ego networks are the bridges (paper Fig. 2).

:class:`EgoNetwork` models one crawl unit, :class:`EgoNetworkCollection`
the joined corpus.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.data.groups import Circle, GroupSet
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph

Node = Hashable

__all__ = ["EgoNetwork", "EgoNetworkCollection"]


@dataclass
class EgoNetwork:
    """One ego network: an ego user, edges among its alters, and circles.

    Following the SNAP on-disk convention, ``alter_edges`` contains edges
    among alters only; the ego's own (implicit) edges to every alter are
    materialized when building graphs.

    Attributes
    ----------
    ego:
        The seed user that owns this ego network.
    alter_edges:
        Directed (or undirected) edges among the alters.
    circles:
        The ego's circles; members are alters.
    directed:
        Whether edges are directed (Google+/Twitter) or not.
    """

    ego: Node
    alter_edges: list[tuple[Node, Node]] = field(default_factory=list)
    circles: list[Circle] = field(default_factory=list)
    directed: bool = True

    @property
    def alters(self) -> frozenset[Node]:
        """All alters: endpoints of alter edges plus circle members."""
        members: set[Node] = set()
        for u, v in self.alter_edges:
            members.add(u)
            members.add(v)
        for circle in self.circles:
            members |= circle.members
        members.discard(self.ego)
        return frozenset(members)

    @property
    def vertices(self) -> frozenset[Node]:
        """All vertices of the ego network, including the ego itself."""
        return self.alters | {self.ego}

    def graph(self) -> Graph | DiGraph:
        """Materialize this single ego network as a graph.

        The ego is connected to every alter (outgoing edges in the directed
        case, matching "in your circles" semantics).
        """
        graph: Graph | DiGraph = DiGraph() if self.directed else Graph()
        graph.add_node(self.ego)
        for alter in self.alters:
            graph.add_edge(self.ego, alter)
        graph.add_edges_from(
            (u, v) for u, v in self.alter_edges if u != v
        )
        return graph

    def __repr__(self) -> str:
        return (
            f"<EgoNetwork ego={self.ego!r} alters={len(self.alters)}"
            f" circles={len(self.circles)}>"
        )


class EgoNetworkCollection(Sequence):
    """A corpus of ego networks and the analyses defined on their union.

    This is the object behind the paper's Figures 1 and 2: the joined
    graph, the per-vertex ego-membership multiplicity, and the fraction of
    overlapping ego networks.
    """

    def __init__(self, networks: Sequence[EgoNetwork], *, name: str = "") -> None:
        if not networks:
            raise ValueError("an ego-network collection needs at least one network")
        egos = [network.ego for network in networks]
        if len(set(egos)) != len(egos):
            raise ValueError("duplicate ego ids in collection")
        directed = {network.directed for network in networks}
        if len(directed) != 1:
            raise ValueError("mixed directed/undirected ego networks")
        self._networks = list(networks)
        self.directed = directed.pop()
        self.name = name

    # -- sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._networks)

    def __getitem__(self, index):  # type: ignore[override]
        return self._networks[index]

    def __iter__(self) -> Iterator[EgoNetwork]:
        return iter(self._networks)

    def __repr__(self) -> str:
        return (
            f"<EgoNetworkCollection {self.name!r} with {len(self)} ego networks>"
        )

    # -- joined corpus ---------------------------------------------------------

    def join(self) -> Graph | DiGraph:
        """Union all ego networks into one graph (paper Fig. 1).

        Shared alters stitch the ego networks together; with sufficient
        overlap the result is one large connected component.
        """
        joined: Graph | DiGraph = (
            DiGraph(name=self.name) if self.directed else Graph(name=self.name)
        )
        for network in self._networks:
            joined.add_node(network.ego)
            for alter in network.alters:
                joined.add_edge(network.ego, alter)
            joined.add_edges_from(
                (u, v) for u, v in network.alter_edges if u != v
            )
        return joined

    def circles(self) -> GroupSet:
        """All circles across the collection as one :class:`GroupSet`.

        Circle names are disambiguated with the owning ego's id.
        """
        groups = GroupSet(name=self.name)
        for network in self._networks:
            for circle in network.circles:
                groups.add(
                    Circle(
                        name=f"{network.ego}/{circle.name}",
                        members=circle.members,
                        owner=network.ego,
                    )
                )
        return groups

    # -- overlap structure (Figures 1 and 2) -----------------------------------

    def membership_counts(self) -> Counter:
        """Count, per vertex, how many ego networks it appears in.

        A vertex "appears in" an ego network if it is the ego or one of its
        alters.  The histogram of these counts is the paper's Figure 2.
        """
        counts: Counter = Counter()
        for network in self._networks:
            for vertex in network.vertices:
                counts[vertex] += 1
        return counts

    def membership_histogram(self) -> dict[int, int]:
        """Map ``k`` -> number of vertices appearing in exactly ``k``
        ego networks (the series plotted in Fig. 2)."""
        histogram: Counter = Counter(self.membership_counts().values())
        return dict(sorted(histogram.items()))

    def overlap_fraction(self) -> float:
        """Fraction of ego networks sharing >= 1 vertex with another one.

        The paper reports 93.5 % for the Google+ corpus.
        """
        vertex_sets = [network.vertices for network in self._networks]
        counts = self.membership_counts()
        overlapping = 0
        for vertices in vertex_sets:
            if any(counts[vertex] > 1 for vertex in vertices):
                overlapping += 1
        return overlapping / len(vertex_sets)

    def pairwise_overlaps(self) -> dict[tuple[Node, Node], int]:
        """Map ego pairs to their shared-vertex count (only pairs > 0).

        Quadratic in the number of ego networks, which is small (the paper
        has 133).
        """
        overlaps: dict[tuple[Node, Node], int] = {}
        networks = self._networks
        vertex_sets = [network.vertices for network in networks]
        for i in range(len(networks)):
            for j in range(i + 1, len(networks)):
                shared = len(vertex_sets[i] & vertex_sets[j])
                if shared:
                    overlaps[(networks[i].ego, networks[j].ego)] = shared
        return overlaps
