"""Determinism-checker tests: canonical serialization, the registry, and
two-run verification of at least one pipeline per stochastic package."""

from __future__ import annotations

import random

import pytest

from repro.devtools.determinism import (
    FAST_PIPELINES,
    PIPELINES,
    canonicalize,
    check_all,
    check_pipeline,
    fingerprint,
    main,
    register_pipeline,
)
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph


# -- canonicalization ---------------------------------------------------------


def test_canonicalize_graph_ignores_construction_order():
    one = Graph([(1, 2), (2, 3)])
    other = Graph([(3, 2), (2, 1)])  # same graph, different insertion order
    assert canonicalize(one) == canonicalize(other)
    assert fingerprint(one) == fingerprint(other)


def test_canonicalize_digraph_keeps_direction():
    forward = DiGraph([("a", "b")])
    backward = DiGraph([("b", "a")])
    assert canonicalize(forward) != canonicalize(backward)


def test_canonicalize_sets_and_dicts_are_order_free():
    assert canonicalize({3, 1, 2}) == canonicalize({2, 3, 1})
    assert fingerprint({"b": 1, "a": {2, 1}}) == fingerprint({"a": {1, 2}, "b": 1})


def test_canonicalize_floats_keep_full_precision():
    assert canonicalize(0.1 + 0.2) != canonicalize(0.3)


# -- registry and checker -----------------------------------------------------


def test_unknown_pipeline_raises():
    with pytest.raises(KeyError, match="unknown pipeline"):
        check_pipeline("no.such.pipeline")


def test_check_needs_two_runs():
    with pytest.raises(ValueError):
        check_pipeline("sampling.random_walk", runs=1)


def test_registry_covers_every_stochastic_package():
    packages = {name.split(".")[0] for name in PIPELINES}
    assert {"sampling", "nullmodel", "detection", "synth"} <= packages
    assert set(FAST_PIPELINES) <= set(PIPELINES)


@pytest.mark.parametrize(
    "name",
    [
        "sampling.random_walk",
        "nullmodel.viger_latapy",
        "nullmodel.double_edge_swap",
        "detection.louvain",
        "detection.label_propagation",
        "synth.erdos_renyi",
    ],
)
def test_pipeline_is_deterministic(name):
    report = check_pipeline(name, seed=11, runs=2)
    assert report.identical, report.first_divergence
    assert report.fingerprint


def test_different_seeds_give_different_fingerprints():
    one = check_pipeline("sampling.random_walk", seed=1)
    two = check_pipeline("sampling.random_walk", seed=2)
    assert one.fingerprint != two.fingerprint


def test_nondeterministic_pipeline_is_caught():
    name = "test.deliberately_unseeded"
    register_pipeline(name, lambda seed: [random.random()], fast=False)
    try:
        report = check_pipeline(name, seed=0)
        assert not report.identical
        assert report.first_divergence is not None
        assert "divergence" in report.first_divergence
    finally:
        PIPELINES.pop(name)


def test_stateful_pipeline_is_caught():
    """Shared mutable state across runs is the other classic failure."""
    name = "test.stateful"
    accumulator: list[int] = []

    def stateful(seed: int) -> object:
        accumulator.append(seed)
        return list(accumulator)

    register_pipeline(name, stateful, fast=False)
    try:
        report = check_pipeline(name, seed=0)
        assert not report.identical
    finally:
        PIPELINES.pop(name)


def test_check_all_subset():
    reports = check_all(["sampling.random_walk", "detection.louvain"], seed=5)
    assert [r.pipeline for r in reports] == [
        "sampling.random_walk",
        "detection.louvain",
    ]
    assert all(r.identical for r in reports)


def test_main_passes_on_fast_pipelines(capsys):
    assert main(["--fast"]) == 0
    output = capsys.readouterr().out
    assert "PASS" in output and "FAIL" not in output


def test_main_fails_on_diverging_pipeline(capsys):
    name = "test.cli_unseeded"
    register_pipeline(name, lambda seed: [random.random()], fast=False)
    try:
        assert main([name]) == 1
        assert "FAIL" in capsys.readouterr().out
    finally:
        PIPELINES.pop(name)


def test_report_format_mentions_pipeline():
    report = check_pipeline("synth.erdos_renyi", seed=3)
    line = report.format()
    assert "synth.erdos_renyi" in line and "PASS" in line
