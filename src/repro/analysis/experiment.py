"""The circles-vs-random experiment (paper section V-A, Figure 5).

For every circle, a size-matched random vertex set is sampled (random walk
by default); both populations are scored under the four paper functions and
the resulting per-function CDF pairs are returned.  The paper's conclusion
— circles are pronounced structures — corresponds to the circle and random
CDFs separating clearly on every function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.analysis.cdf import EmpiricalCDF
from repro.data.datasets import Dataset
from repro.data.groups import GroupSet, VertexGroup
from repro.engine import (
    AnalysisContext,
    ParallelExecutor,
    ResultCache,
    resolve_jobs,
    sample_matched_sets,
)
from repro.obs import capture_manifest, instruments
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.scoring.base import ScoringFunction
from repro.scoring.registry import ScoreTable, make_paper_functions, score_groups

__all__ = ["CirclesVsRandomResult", "circles_vs_random"]


@dataclass
class CirclesVsRandomResult:
    """Per-function score CDFs for circles and matched random sets."""

    dataset: str
    sampler: str
    circle_scores: ScoreTable = field(repr=False)
    random_scores: ScoreTable = field(repr=False)

    def function_names(self) -> list[str]:
        """Scored function names, in evaluation order."""
        return self.circle_scores.function_names()

    def cdf_pair(self, function_name: str) -> tuple[EmpiricalCDF, EmpiricalCDF]:
        """Return ``(circles_cdf, random_cdf)`` for one function (Fig. 5
        panel)."""
        return (
            EmpiricalCDF(self.circle_scores.scores(function_name), label="circles"),
            EmpiricalCDF(self.random_scores.scores(function_name), label="random"),
        )

    def separation_summary(self) -> dict[str, dict[str, float]]:
        """Paper-claim-oriented summary per function.

        Reports means/medians of both populations plus the fraction of
        circles below the random median — the quantity behind "the score
        for more than 70% of the circles is lower than for the random
        sets" (Ratio Cut) and "more than 50% of the circles show a
        significant deviation" (Modularity).
        """
        summary: dict[str, dict[str, float]] = {}
        for name in self.function_names():
            circles, randoms = self.cdf_pair(name)
            random_median = randoms.median
            summary[name] = {
                "circle_mean": circles.mean,
                "random_mean": randoms.mean,
                "circle_median": circles.median,
                "random_median": random_median,
                "circles_below_random_median": circles(random_median),
            }
        return summary


def circles_vs_random(
    source: Dataset | tuple[Graph | DiGraph, GroupSet],
    *,
    functions: list[ScoringFunction] | None = None,
    sampler: str = "random_walk",
    seed: int | None = 0,
    min_group_size: int = 2,
    context: AnalysisContext | None = None,
    jobs: int | None = None,
    cache: "ResultCache | str | bool | None" = None,
) -> CirclesVsRandomResult:
    """Run the Fig. 5 experiment: score circles against matched random sets.

    ``sampler`` selects the baseline generator (``random_walk`` is the
    paper's choice; see :mod:`repro.engine.samplers` for the CSR-native
    implementations and :mod:`repro.sampling.random_sets` for the ablation
    alternatives).  Groups smaller than ``min_group_size`` (after
    restriction to the graph) are skipped — a single vertex scores
    degenerately under every function.

    The graph is frozen into an :class:`~repro.engine.AnalysisContext`
    exactly once; scoring of both populations and the matched sampling all
    share that one substrate.  Pass ``context`` to reuse an existing
    freeze of the same graph.

    ``jobs > 1`` runs circle scoring, matched sampling and random-set
    scoring on one shared worker pool over the frozen context (results
    stay byte-identical to serial); ``cache`` serves repeated runs from
    disk (see :class:`~repro.engine.ResultCache`).
    """
    if isinstance(source, Dataset):
        graph, groups = source.graph, source.groups
        dataset_name = source.name
    else:
        graph, groups = source
        dataset_name = graph.name or "graph"
    functions = functions or make_paper_functions()
    context = AnalysisContext.ensure(context if context is not None else graph)

    with obs.span("experiment.circles_vs_random"):
        usable: list[VertexGroup] = []
        for group in groups:
            members = [node for node in group.members if node in context]
            if len(members) >= min_group_size:
                usable.append(group)
        usable_set = GroupSet(groups=usable, name=dataset_name)

        # One executor spans all three phases, so pool startup and the
        # shared-memory CSR export are paid once per run, not per batch.
        effective_jobs = resolve_jobs(jobs)
        executor = (
            ParallelExecutor(context, effective_jobs)
            if effective_jobs > 1
            else None
        )
        try:
            circle_scores = score_groups(
                context, usable_set, functions, cache=cache, executor=executor
            )
            sizes = circle_scores.group_sizes
            random_sets = sample_matched_sets(
                context, sizes, sampler, seed=seed, cache=cache,
                executor=executor,
            )
            random_groups = GroupSet(
                groups=[
                    VertexGroup(name=f"random-{i}", members=frozenset(members))
                    for i, members in enumerate(random_sets)
                ],
                name=f"{dataset_name}-random",
            )
            random_scores = score_groups(
                context,
                random_groups,
                functions,
                restrict_to_graph=False,
                cache=cache,
                executor=executor,
            )
        finally:
            if executor is not None:
                executor.close()
        if obs.enabled():
            instruments.EXPERIMENT_RUNS.inc(label="circles_vs_random")
            obs.record_manifest(
                capture_manifest(
                    "circles_vs_random",
                    contexts={dataset_name: context},
                    seeds={"sampler": seed},
                    functions=[function.name for function in functions],
                    extra={"sampler": sampler},
                )
            )
    return CirclesVsRandomResult(
        dataset=dataset_name,
        sampler=sampler,
        circle_scores=circle_scores,
        random_scores=random_scores,
    )
