"""Edge-case tests for the whole-program call graph.

The interprocedural rules are only as sound as the graph under them, so
the resolution machinery is pinned here: decorated functions, indirect
references (``functools.partial``), registry dispatch, method resolution
through ``self``, process-boundary edges, and the SCC condensation's
callee-first contract on mutual recursion.
"""

from __future__ import annotations

import textwrap

from repro.devtools.callgraph import (
    CALL,
    PROCESS,
    REF,
    build_program,
    module_name_for_path,
)


def make_program(sources: dict[str, str]):
    items = [
        (modname, f"src/{modname.replace('.', '/')}.py", textwrap.dedent(src))
        for modname, src in sorted(sources.items())
    ]
    return build_program(items)


def call_targets(program, caller: str) -> list[str]:
    return program.callees(caller, frozenset({CALL}))


# -- module naming ------------------------------------------------------------


def test_module_name_for_path_strips_src_anchor():
    assert module_name_for_path("src/repro/engine/cache.py") == (
        "repro.engine.cache"
    )


def test_module_name_for_path_names_package_for_init():
    assert module_name_for_path("src/repro/graph/__init__.py") == "repro.graph"


def test_module_name_for_path_without_anchor_uses_components():
    assert module_name_for_path("tests/devtools/helper.py") == (
        "tests.devtools.helper"
    )


# -- direct calls and decoration ----------------------------------------------


def test_direct_call_edge_resolved():
    program = make_program(
        {
            "m": """
                __all__ = ["f"]

                def helper(x):
                    return x + 1

                def f(x):
                    return helper(x)
            """
        }
    )
    assert call_targets(program, "m:f") == ["m:helper"]


def test_decorated_function_still_indexed_and_callable():
    program = make_program(
        {
            "m": """
                import functools
                __all__ = ["f"]

                @functools.lru_cache(maxsize=None)
                def helper(x):
                    return x + 1

                def f(x):
                    return helper(x)
            """
        }
    )
    assert "m:helper" in program.functions
    assert call_targets(program, "m:f") == ["m:helper"]


def test_cross_module_call_through_from_import():
    program = make_program(
        {
            "pkg.a": """
                __all__ = ["helper"]

                def helper(x):
                    return x
            """,
            "pkg.b": """
                from pkg.a import helper
                __all__ = ["f"]

                def f(x):
                    return helper(x)
            """,
        }
    )
    assert call_targets(program, "pkg.b:f") == ["pkg.a:helper"]


# -- functools.partial / bare references --------------------------------------


def test_partial_argument_creates_ref_edge():
    program = make_program(
        {
            "m": """
                import functools
                __all__ = ["f"]

                def worker(x, y):
                    return x + y

                def f():
                    return functools.partial(worker, 1)
            """
        }
    )
    refs = program.callees("m:f", frozenset({REF}))
    assert refs == ["m:worker"]


def test_ref_edges_participate_in_reachability_when_asked():
    program = make_program(
        {
            "m": """
                import functools
                __all__ = ["f"]

                def leaf():
                    return 0

                def worker():
                    return leaf()

                def f():
                    return functools.partial(worker)
            """
        }
    )
    reached = program.reachable(["m:f"], kinds=frozenset({CALL, REF}))
    assert "m:worker" in reached
    assert "m:leaf" in reached
    # Provenance points back at the root the function was reached from.
    assert reached["m:leaf"] == "m:f"


# -- registry dispatch --------------------------------------------------------


def test_registry_subscript_dispatch_resolves_all_targets():
    program = make_program(
        {
            "m": """
                __all__ = ["dispatch"]

                def fast(x):
                    return x

                def slow(x):
                    return x * 2

                HANDLERS = {"fast": fast, "slow": slow}

                def dispatch(kind, x):
                    return HANDLERS[kind](x)
            """
        }
    )
    assert call_targets(program, "m:dispatch") == ["m:fast", "m:slow"]


def test_registry_bound_local_name_dispatch_resolves():
    program = make_program(
        {
            "m": """
                __all__ = ["dispatch"]

                def fast(x):
                    return x

                HANDLERS = {"fast": fast}

                def dispatch(kind, x):
                    handler = HANDLERS[kind]
                    return handler(x)
            """
        }
    )
    assert call_targets(program, "m:dispatch") == ["m:fast"]


def test_registry_of_classes_resolves_methods_via_cha():
    program = make_program(
        {
            "m": """
                __all__ = ["run"]

                class Fast:
                    name = "fast"

                    def __call__(self, x):
                        return self.score(x)

                    def score(self, x):
                        return x

                FACTORIES = {"fast": Fast}

                def run(kind, x):
                    fn = FACTORIES[kind]
                    return fn()(x)
            """
        }
    )
    # Inside __call__, self.score resolves through the owning class.
    assert "m:Fast.score" in call_targets(program, "m:Fast.__call__")


# -- nested classes -----------------------------------------------------------


def test_nested_class_methods_register_under_full_qualname():
    # Regression: methods of a class nested inside another class used to
    # be registered under the *immediate* class name ("mod:Inner"), which
    # raised KeyError because the ClassInfo lives at "mod:Outer.Inner".
    program = make_program(
        {
            "m": """
                __all__ = ["Outer"]

                class Outer:
                    class Inner:
                        def helper(self):
                            return 1

                        def run(self):
                            return self.helper()

                    def outer_run(self):
                        return 0
            """
        }
    )
    inner = program.classes["m:Outer.Inner"]
    assert inner.methods["run"] == "m:Outer.Inner.run"
    assert inner.methods["helper"] == "m:Outer.Inner.helper"
    assert program.classes["m:Outer"].methods["outer_run"] == (
        "m:Outer.outer_run"
    )
    # self.* inside the nested class resolves through its own table.
    assert call_targets(program, "m:Outer.Inner.run") == [
        "m:Outer.Inner.helper"
    ]


# -- relative imports in package __init__ -------------------------------------


def test_relative_import_in_package_init_anchors_at_the_package():
    # Regression: ``from .util import helper`` in pkg/__init__.py used to
    # anchor at pkg's *parent* (modname "pkg" minus one level), silently
    # dropping the pkg:entry -> pkg.util:helper edge.
    items = [
        (
            "pkg",
            "src/pkg/__init__.py",
            textwrap.dedent(
                """
                from .util import helper
                __all__ = ["entry"]

                def entry(x):
                    return helper(x)
                """
            ),
        ),
        (
            "pkg.util",
            "src/pkg/util.py",
            textwrap.dedent(
                """
                __all__ = ["helper"]

                def helper(x):
                    return x
                """
            ),
        ),
    ]
    program = build_program(items)
    assert call_targets(program, "pkg:entry") == ["pkg.util:helper"]


def test_relative_import_in_plain_module_still_drops_own_name():
    items = [
        (
            "pkg.util",
            "src/pkg/util.py",
            textwrap.dedent(
                """
                __all__ = ["helper"]

                def helper(x):
                    return x
                """
            ),
        ),
        (
            "pkg.work",
            "src/pkg/work.py",
            textwrap.dedent(
                """
                from .util import helper
                __all__ = ["entry"]

                def entry(x):
                    return helper(x)
                """
            ),
        ),
    ]
    program = build_program(items)
    assert call_targets(program, "pkg.work:entry") == ["pkg.util:helper"]


# -- self/method resolution ---------------------------------------------------


def test_self_method_call_resolves_through_base_class():
    program = make_program(
        {
            "m": """
                __all__ = ["Base", "Derived"]

                class Base:
                    def helper(self):
                        return 1

                class Derived(Base):
                    def run(self):
                        return self.helper()
            """
        }
    )
    assert "m:Base.helper" in call_targets(program, "m:Derived.run")


def test_unknown_receiver_with_ubiquitous_attr_adds_no_cha_edges():
    # ``obj.close()`` on an unknown receiver must not link to every
    # program class that happens to define ``close``.
    program = make_program(
        {
            "m": """
                __all__ = ["run"]

                class Writer:
                    def close(self):
                        return 0

                def run(obj):
                    obj.close()
            """
        }
    )
    assert call_targets(program, "m:run") == []


def test_annotated_receiver_resolves_precisely_through_its_class():
    program = make_program(
        {
            "m": """
                __all__ = ["run"]

                class Writer:
                    def close(self):
                        return 0

                class Reader:
                    def close(self):
                        return 1

                def run(w: Writer):
                    w.close()
            """
        }
    )
    assert call_targets(program, "m:run") == ["m:Writer.close"]


def test_constructor_assigned_receiver_resolves_precisely():
    program = make_program(
        {
            "m": """
                __all__ = ["run"]

                class Writer:
                    def finish_shard(self):
                        return 0

                class Reader:
                    def finish_shard(self):
                        return 1

                def run():
                    w = Writer()
                    w.finish_shard()
            """
        }
    )
    targets = call_targets(program, "m:run")
    assert "m:Writer.finish_shard" in targets
    assert "m:Reader.finish_shard" not in targets


def test_unknown_receiver_with_program_specific_attr_keeps_cha_fallback():
    # Uncommon attribute names still fan out by name: the graph stays
    # mildly over-approximate where the receiver is genuinely unknown.
    program = make_program(
        {
            "m": """
                __all__ = ["run"]

                class Engine:
                    def score_shard(self):
                        return 0

                def run(obj):
                    obj.score_shard()
            """
        }
    )
    assert call_targets(program, "m:run") == ["m:Engine.score_shard"]


# -- process boundaries -------------------------------------------------------


def test_pool_submit_creates_process_edge_and_worker_entry():
    program = make_program(
        {
            "m": """
                from concurrent.futures import ProcessPoolExecutor
                __all__ = ["run"]

                def _shard(x):
                    return x

                def run(jobs, xs):
                    with ProcessPoolExecutor(max_workers=jobs) as pool:
                        futures = [pool.submit(_shard, x) for x in xs]
                    return [f.result() for f in futures]
            """
        }
    )
    assert program.worker_entries() == ["m:_shard"]
    process = program.callees("m:run", frozenset({PROCESS}))
    assert process == ["m:_shard"]


def test_executor_initializer_kwarg_is_worker_entry():
    program = make_program(
        {
            "m": """
                from concurrent.futures import ProcessPoolExecutor
                __all__ = ["run"]

                def _init():
                    pass

                def _shard(x):
                    return x

                def run(jobs, xs):
                    with ProcessPoolExecutor(
                        max_workers=jobs, initializer=_init
                    ) as pool:
                        return list(pool.map(_shard, xs))
            """
        }
    )
    assert program.worker_entries() == ["m:_init", "m:_shard"]


# -- SCC condensation ---------------------------------------------------------


def test_mutual_recursion_forms_one_scc():
    program = make_program(
        {
            "m": """
                __all__ = ["even"]

                def even(n):
                    return True if n == 0 else odd(n - 1)

                def odd(n):
                    return False if n == 0 else even(n - 1)
            """
        }
    )
    components = program.condensation()
    recursive = [c for c in components if len(c) > 1]
    assert recursive == [tuple(sorted(("m:even", "m:odd")))] or (
        set(recursive[0]) == {"m:even", "m:odd"}
    )


def test_condensation_is_callee_first():
    program = make_program(
        {
            "m": """
                __all__ = ["top"]

                def leaf(x):
                    return x

                def mid(x):
                    return leaf(x)

                def top(x):
                    return mid(x)
            """
        }
    )
    components = program.condensation()
    position = {
        key: index
        for index, component in enumerate(components)
        for key in component
    }
    assert position["m:leaf"] < position["m:mid"] < position["m:top"]


def test_self_recursion_is_singleton_component():
    program = make_program(
        {
            "m": """
                __all__ = ["fact"]

                def fact(n):
                    return 1 if n <= 1 else n * fact(n - 1)
            """
        }
    )
    components = program.condensation()
    assert ("m:fact",) in components
