"""Unit tests of the bench-trajectory regression gate (scripts/)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parents[2] / "scripts" / "bench_trajectory.py"
)
_spec = importlib.util.spec_from_file_location("bench_trajectory", _SCRIPT)
traj = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(traj)


def _write(root, filename, report):
    path = root / filename
    path.write_text(json.dumps(report), encoding="utf-8")
    return path


@pytest.fixture
def reports(tmp_path):
    """One healthy report per gated file."""
    _write(
        tmp_path,
        "BENCH_columnar.json",
        {"mode": "full", "speedup": 9.0, "groups": 10000},
    )
    _write(
        tmp_path,
        "BENCH_scale.json",
        {
            "mode": "scale",
            "scales": [
                {
                    "edges_requested": 1_000_000,
                    "freeze_peak_rss_mb": 180.0,
                    "score_peak_rss_mb": 110.0,
                }
            ],
        },
    )
    _write(
        tmp_path,
        "BENCH_service.json",
        {"mode": "smoke", "warm_speedup_p50": 8.0},
    )
    return tmp_path


@pytest.fixture
def baseline(reports, tmp_path):
    path = tmp_path / "BASELINES.json"
    assert traj.update(reports, path) == 0
    return path


class TestResolvePath:
    def test_plain_and_nested_keys(self):
        assert traj.resolve_path({"mode": "full"}, "mode") == "full"
        assert traj.resolve_path({"a": {"b": 3}}, "a.b") == 3

    def test_negative_index(self):
        report = {"scales": [{"x": 1}, {"x": 2}]}
        assert traj.resolve_path(report, "scales[-1].x") == 2
        assert traj.resolve_path(report, "scales[0].x") == 1

    def test_missing_paths_resolve_to_none(self):
        assert traj.resolve_path({}, "mode") is None
        assert traj.resolve_path({"scales": []}, "scales[-1].x") is None
        assert traj.resolve_path({"a": 1}, "a.b") is None


class TestUpdate:
    def test_records_every_gated_metric(self, reports, baseline):
        recorded = json.loads(baseline.read_text())
        assert recorded["BENCH_columnar.json"]["metrics"]["speedup"] == 9.0
        assert recorded["BENCH_columnar.json"]["guard"] == {"mode": "full"}
        assert recorded["BENCH_scale.json"]["metrics"] == {
            "scales[-1].freeze_peak_rss_mb": 180.0,
            "scales[-1].score_peak_rss_mb": 110.0,
        }
        assert (
            recorded["BENCH_service.json"]["metrics"]["warm_speedup_p50"]
            == 8.0
        )

    def test_no_reports_is_an_error(self, tmp_path):
        assert traj.update(tmp_path, tmp_path / "BASELINES.json") == 1


class TestCheck:
    def test_identical_reports_pass(self, reports, baseline):
        assert traj.check(reports, baseline, 0.20) == 0

    def test_higher_is_better_regression_fails(self, reports, baseline):
        _write(
            reports,
            "BENCH_columnar.json",
            {"mode": "full", "speedup": 7.0},  # 9.0 * 0.8 = 7.2 > 7.0
        )
        assert traj.check(reports, baseline, 0.20) == 1

    def test_lower_is_better_regression_fails(self, reports, baseline):
        _write(
            reports,
            "BENCH_scale.json",
            {
                "mode": "scale",
                "scales": [
                    {
                        "edges_requested": 1_000_000,
                        "freeze_peak_rss_mb": 250.0,  # > 180 * 1.2
                        "score_peak_rss_mb": 110.0,
                    }
                ],
            },
        )
        assert traj.check(reports, baseline, 0.20) == 1

    def test_within_tolerance_passes(self, reports, baseline):
        _write(
            reports,
            "BENCH_columnar.json",
            {"mode": "full", "speedup": 7.3},  # above the 7.2 floor
        )
        assert traj.check(reports, baseline, 0.20) == 0

    def test_guard_mismatch_skips_instead_of_failing(
        self, reports, baseline, capsys
    ):
        _write(
            reports,
            "BENCH_scale.json",
            {
                "mode": "scale",
                "scales": [
                    {
                        "edges_requested": 10_000_000,  # different scale
                        "freeze_peak_rss_mb": 9000.0,
                        "score_peak_rss_mb": 9000.0,
                    }
                ],
            },
        )
        assert traj.check(reports, baseline, 0.20) == 0
        assert "skipped" in capsys.readouterr().out

    def test_missing_report_skips(self, reports, baseline):
        (reports / "BENCH_service.json").unlink()
        assert traj.check(reports, baseline, 0.20) == 0

    def test_missing_metric_in_current_report_fails(self, reports, baseline):
        _write(reports, "BENCH_service.json", {"mode": "smoke"})
        assert traj.check(reports, baseline, 0.20) == 1

    def test_missing_baselines_file_fails(self, reports, tmp_path):
        assert traj.check(reports, tmp_path / "missing.json", 0.20) == 1


class TestMain:
    def test_update_then_check_via_argv(self, reports, tmp_path):
        baseline = tmp_path / "BASELINES.json"
        argv = [
            "--root",
            str(reports),
            "--baseline",
            str(baseline),
        ]
        assert traj.main([*argv, "--update"]) == 0
        assert traj.main(argv) == 0
        assert traj.main([*argv, "--tolerance", "0.5"]) == 0
