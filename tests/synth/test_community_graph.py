"""Planted-community graph generator tests."""

import dataclasses

import numpy as np
import pytest

from repro.scoring import Conductance, compute_group_stats
from repro.synth.community_graph import (
    CommunityGraphConfig,
    generate_community_graph,
)
from tests.conftest import SMALL_COMMUNITY_CONFIG


class TestConfigValidation:
    def test_default_valid(self):
        CommunityGraphConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_communities", 0),
            ("community_size_min", 2),
            ("background_degree", -1.0),
            ("membership_bias", -0.5),
        ],
    )
    def test_invalid_values(self, field, value):
        config = dataclasses.replace(SMALL_COMMUNITY_CONFIG, **{field: value})
        with pytest.raises(ValueError):
            config.validate()

    def test_nodes_must_cover_largest_community(self):
        config = dataclasses.replace(
            SMALL_COMMUNITY_CONFIG, num_nodes=10, community_size_max=50
        )
        with pytest.raises(ValueError):
            config.validate()


class TestGeneration:
    def test_counts(self):
        graph, groups = generate_community_graph(SMALL_COMMUNITY_CONFIG, seed=0)
        assert graph.number_of_nodes() == SMALL_COMMUNITY_CONFIG.num_nodes
        assert len(groups) == SMALL_COMMUNITY_CONFIG.num_communities

    def test_deterministic(self):
        a_graph, a_groups = generate_community_graph(SMALL_COMMUNITY_CONFIG, seed=4)
        b_graph, b_groups = generate_community_graph(SMALL_COMMUNITY_CONFIG, seed=4)
        assert a_graph.number_of_edges() == b_graph.number_of_edges()
        assert [g.members for g in a_groups] == [g.members for g in b_groups]

    def test_sizes_within_bounds(self):
        __, groups = generate_community_graph(SMALL_COMMUNITY_CONFIG, seed=1)
        for group in groups:
            assert (
                SMALL_COMMUNITY_CONFIG.community_size_min
                <= len(group)
                <= SMALL_COMMUNITY_CONFIG.community_size_max
            )

    def test_members_are_graph_nodes(self):
        graph, groups = generate_community_graph(SMALL_COMMUNITY_CONFIG, seed=2)
        for group in groups:
            assert all(member in graph for member in group)

    def test_undirected_simple(self):
        graph, __ = generate_community_graph(SMALL_COMMUNITY_CONFIG, seed=3)
        assert not graph.is_directed
        assert all(u != v for u, v in graph.edges)

    def test_communities_denser_than_ambient(self):
        graph, groups = generate_community_graph(SMALL_COMMUNITY_CONFIG, seed=5)
        n = graph.number_of_nodes()
        m = graph.number_of_edges()
        ambient_density = 2 * m / (n * (n - 1))
        internal = []
        for group in groups:
            stats = compute_group_stats(graph, group.members)
            possible = stats.possible_internal_edges
            if possible:
                internal.append(stats.m_C / possible)
        assert np.median(internal) > 5 * ambient_density

    def test_conductance_distribution_is_broad(self):
        graph, groups = generate_community_graph(SMALL_COMMUNITY_CONFIG, seed=6)
        conductance = Conductance()
        values = [
            conductance(compute_group_stats(graph, group.members))
            for group in groups
        ]
        assert max(values) - min(values) > 0.3  # LJ's near-uniform spread

    def test_zero_background_allowed(self):
        config = dataclasses.replace(SMALL_COMMUNITY_CONFIG, background_degree=0.0)
        graph, groups = generate_community_graph(config, seed=7)
        assert graph.number_of_edges() > 0  # community edges remain
