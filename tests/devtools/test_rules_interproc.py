"""True-positive and false-positive tests for the interprocedural rule
families (REP4xx parallel safety, REP5xx cache soundness).

Every rule must fire on its seeded bug pattern and stay quiet on the
closest legitimate variant — the patterns the real engine uses
(copy-before-write shards, indexed as_completed merges, the atomic
``_store`` helper, scoring functions that store every ``__init__``
parameter).  The final tests run the whole ``lint_paths`` front end over
a temp tree to pin the end-to-end wiring: program findings merge into
per-file output, ``--jobs`` stays byte-identical, and ``noqa`` works.
"""

from __future__ import annotations

import textwrap

from repro.devtools.callgraph import build_program
from repro.devtools.lint import INTERPROC_RULES, LintConfig, lint_paths


def program_rule_ids(sources: dict[str, str]) -> list[str]:
    items = [
        (modname, f"src/{modname.replace('.', '/')}.py",
         textwrap.dedent(src))
        for modname, src in sorted(sources.items())
    ]
    program = build_program(items)
    found: list[str] = []
    for rule_cls in INTERPROC_RULES:
        for violation in rule_cls().check_program(program):
            found.append(violation.rule_id)
    return found


# -- REP401: worker mutates frozen state --------------------------------------

_REP401_BAD = {
    "m": """
        from concurrent.futures import ProcessPoolExecutor
        __all__ = ["run"]

        def _worker_context() -> "AnalysisContext":
            raise RuntimeError("set by initializer")

        def _shard(start):
            context = _worker_context()
            context.csr.indices[0] = 7
            return start

        def run(jobs):
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [pool.submit(_shard, s) for s in range(4)]
            return [f.result() for f in futures]
    """
}


def test_rep401_fires_on_seeded_frozen_mutation_in_worker():
    assert "REP401" in program_rule_ids(_REP401_BAD)


def test_rep401_fires_when_mutation_is_below_the_worker_entry():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor
            __all__ = ["run"]

            def _worker_context() -> "AnalysisContext":
                raise RuntimeError("set by initializer")

            def _deep(context):
                context.csr.indices[0] = 7

            def _shard(start):
                _deep(_worker_context())
                return start

            def run(jobs):
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = [pool.submit(_shard, s) for s in range(4)]
                return [f.result() for f in futures]
        """
    }
    assert "REP401" in program_rule_ids(sources)


def test_rep401_quiet_on_copy_before_write():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor
            __all__ = ["run"]

            def _worker_context() -> "AnalysisContext":
                raise RuntimeError("set by initializer")

            def _shard(start):
                context = _worker_context()
                order = context.csr.indices.copy()
                order[0] = 7
                return start

            def run(jobs):
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = [pool.submit(_shard, s) for s in range(4)]
                return [f.result() for f in futures]
        """
    }
    assert "REP401" not in program_rule_ids(sources)


def test_rep401_quiet_when_mutation_is_not_worker_reachable():
    sources = {
        "m": """
            __all__ = ["rebuild"]

            def rebuild(context: "AnalysisContext"):
                context.csr.indices[0] = 7
        """
    }
    # Frozen mutation with no process dispatch anywhere: REP401 is about
    # *worker* mutation races, so it must not fire (REP2xx owns the rest).
    assert "REP401" not in program_rule_ids(sources)


# -- REP402: RNG transitively crosses a process boundary ----------------------


def test_rep402_fires_on_rng_returned_by_helper():
    sources = {
        "m": """
            import random
            from concurrent.futures import ProcessPoolExecutor
            __all__ = ["run"]

            def _make(seed):
                return random.Random(seed)

            def _work(state):
                return state

            def run(jobs, seed):
                state = _make(seed)
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    future = pool.submit(_work, state)
                return future.result()
        """
    }
    assert "REP402" in program_rule_ids(sources)


def test_rep402_quiet_on_integer_child_seeds():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor
            __all__ = ["run"]

            def _spawn(seed, n):
                return [seed + k for k in range(n)]

            def _work(child_seed):
                return child_seed

            def run(jobs, seed):
                seeds = _spawn(seed, 4)
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = [pool.submit(_work, s) for s in seeds]
                return [f.result() for f in futures]
        """
    }
    assert "REP402" not in program_rule_ids(sources)


# -- REP403: unpicklable worker callable --------------------------------------


def test_rep403_fires_on_lambda_dispatch():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor
            __all__ = ["run"]

            def run(jobs):
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    future = pool.submit(lambda x: x + 1, 3)
                return future.result()
        """
    }
    assert "REP403" in program_rule_ids(sources)


def test_rep403_fires_on_name_bound_to_lambda():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor
            __all__ = ["run"]

            def run(jobs):
                task = lambda x: x + 1
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    future = pool.submit(task, 3)
                return future.result()
        """
    }
    assert "REP403" in program_rule_ids(sources)


def test_rep403_quiet_on_module_level_worker():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor
            __all__ = ["run"]

            def _work(x):
                return x + 1

            def run(jobs):
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    future = pool.submit(_work, 3)
                return future.result()
        """
    }
    assert "REP403" not in program_rule_ids(sources)


# -- REP404: completion-order merge -------------------------------------------


def test_rep404_fires_on_append_under_as_completed():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor, as_completed
            __all__ = ["run"]

            def _work(x):
                return x

            def run(jobs, xs):
                results = []
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = [pool.submit(_work, x) for x in xs]
                    for future in as_completed(futures):
                        results.append(future.result())
                return results
        """
    }
    assert "REP404" in program_rule_ids(sources)


def test_rep404_quiet_on_indexed_store_under_as_completed():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor, as_completed
            __all__ = ["run"]

            def _work(x):
                return x

            def run(jobs, xs):
                results = [None] * len(xs)
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = {pool.submit(_work, x): i
                               for i, x in enumerate(xs)}
                    for future in as_completed(futures):
                        results[futures[future]] = future.result()
                return results
        """
    }
    assert "REP404" not in program_rule_ids(sources)


def test_rep404_quiet_on_bookkeeping_future_collection():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor, as_completed
            __all__ = ["run"]

            def _work(x):
                return x

            def run(jobs, xs):
                done = []
                count = 0
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = [pool.submit(_work, x) for x in xs]
                    for future in as_completed(futures):
                        done.append(future)
                        count += 1
                return [f.result() for f in futures]
        """
    }
    # Collecting the finished futures (membership/progress bookkeeping)
    # and counting completions never touch a result: order-insensitive.
    assert "REP404" not in program_rule_ids(sources)


def test_rep404_quiet_when_accumulator_is_resorted():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor, as_completed
            __all__ = ["run"]

            def _work(x):
                return x

            def run(jobs, xs):
                results = []
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = [pool.submit(_work, x) for x in xs]
                    for future in as_completed(futures):
                        results.append(future.result())
                results.sort()
                return results
        """
    }
    assert "REP404" not in program_rule_ids(sources)


def test_rep404_fires_on_augassign_reduction_of_results():
    sources = {
        "m": """
            from concurrent.futures import ProcessPoolExecutor, as_completed
            __all__ = ["run"]

            def _work(x):
                return x * 0.5

            def run(jobs, xs):
                total = 0.0
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = [pool.submit(_work, x) for x in xs]
                    for future in as_completed(futures):
                        total += future.result()
                return total
        """
    }
    assert "REP404" in program_rule_ids(sources)


def test_rep404_fires_on_imap_unordered_loop_variable_append():
    sources = {
        "m": """
            __all__ = ["run"]

            def _work(x):
                return x

            def run(worker_pool, xs):
                rows = []
                for row in worker_pool.imap_unordered(_work, xs):
                    rows.append(row)
                return rows
        """
    }
    assert "REP404" in program_rule_ids(sources)


# -- REP405: frozen store memmap opened writable ------------------------------


def test_rep405_fires_on_memmap_without_mode():
    sources = {
        "m": """
            import numpy as np
            __all__ = ["attach"]

            def attach(path, count):
                return np.memmap(path, dtype=np.int64, shape=(count,))
        """
    }
    assert "REP405" in program_rule_ids(sources)


def test_rep405_fires_on_writable_memmap_mode():
    sources = {
        "m": """
            import numpy as np
            __all__ = ["attach"]

            def attach(path, count):
                return np.memmap(path, dtype=np.int64, mode="r+", shape=(count,))
        """
    }
    assert "REP405" in program_rule_ids(sources)


def test_rep405_fires_on_writable_np_load_mmap():
    sources = {
        "m": """
            import numpy as np
            __all__ = ["attach"]

            def attach(path):
                return np.load(path, mmap_mode="w+")
        """
    }
    assert "REP405" in program_rule_ids(sources)


def test_rep405_fires_on_unfreezing_writeable_flag():
    sources = {
        "m": """
            __all__ = ["unfreeze"]

            def unfreeze(array):
                array.flags.writeable = True
                return array
        """
    }
    assert "REP405" in program_rule_ids(sources)


def test_rep405_quiet_on_read_only_modes():
    sources = {
        "m": """
            import numpy as np
            __all__ = ["attach", "copy_on_write", "load"]

            def attach(path, count):
                return np.memmap(path, dtype=np.int64, mode="r", shape=(count,))

            def copy_on_write(path, count):
                return np.memmap(path, dtype=np.int64, mode="c", shape=(count,))

            def load(path):
                return np.load(path, mmap_mode="r")
        """
    }
    assert "REP405" not in program_rule_ids(sources)


def test_rep405_quiet_on_plain_load_and_nonconstant_mode():
    sources = {
        "m": """
            import numpy as np
            __all__ = ["load", "attach"]

            def load(path):
                return np.load(path)

            def attach(path, count, mode):
                return np.memmap(path, dtype=np.int64, mode=mode, shape=(count,))
        """
    }
    assert "REP405" not in program_rule_ids(sources)


def test_rep405_allowlists_context_delta_row_patching():
    sources = {
        "m": """
            import numpy as np
            __all__ = ["ContextDelta"]

            class ContextDelta:
                def _patch_rows(self, array):
                    array.flags.writeable = True
                    return array
        """
    }
    assert "REP405" not in program_rule_ids(sources)


# -- REP501: cache key misses a payload input ---------------------------------

_REP501_BAD = {
    "m": """
        __all__ = ["matched_sets"]

        def matched_sets(store, context, *, sampler, rng_seed):
            key = store.matched_key(context, tokens=(rng_seed,))
            payload = sampler.sample(context, rng_seed)
            store.store_matched(key, payload)
            return payload
    """
}


def test_rep501_fires_when_sampler_token_dropped_from_key():
    assert "REP501" in program_rule_ids(_REP501_BAD)


def test_rep501_quiet_when_every_payload_input_is_keyed():
    sources = {
        "m": """
            __all__ = ["matched_sets"]

            def matched_sets(store, context, *, sampler, rng_seed):
                key = store.matched_key(
                    context, tokens=(sampler.name, rng_seed)
                )
                payload = sampler.sample(context, rng_seed)
                store.store_matched(key, payload)
                return payload
        """
    }
    assert "REP501" not in program_rule_ids(sources)


def test_rep501_quiet_on_execution_knobs():
    sources = {
        "m": """
            __all__ = ["score_all"]

            def score_all(store, context, groups, jobs):
                key = store.score_key(context, groups=groups)
                table = [(g, len(g), jobs and 1) for g in groups]
                store.store_score(key, table)
                return table
        """
    }
    # ``jobs`` changes how, not what, is computed — exempt by design.
    assert "REP501" not in program_rule_ids(sources)


# -- REP502: cache write bypasses the atomic helper ---------------------------


def test_rep502_fires_on_direct_savez_to_cache_path():
    sources = {
        "m": """
            import numpy as np
            __all__ = ["ShardCache"]

            class ShardCache:
                def __init__(self, root):
                    self.root = root

                def _path(self, key):
                    return self.root / key

                def store_raw(self, key, arrays):
                    target = self._path(key)
                    np.savez(target, **arrays)
        """
    }
    assert "REP502" in program_rule_ids(sources)


def test_rep502_quiet_inside_the_atomic_store_helper():
    sources = {
        "m": """
            import numpy as np
            import os
            __all__ = ["ShardCache"]

            class ShardCache:
                def __init__(self, root):
                    self.root = root

                def _path(self, key):
                    return self.root / key

                def _store(self, key, arrays):
                    target = self._path(key)
                    scratch = target.with_name(target.name + ".tmp")
                    np.savez(scratch, **arrays)
                    os.replace(scratch, target)
        """
    }
    assert "REP502" not in program_rule_ids(sources)


# -- REP503: scoring state / token drift --------------------------------------


def test_rep503_fires_on_unstored_init_parameter():
    sources = {
        "m": """
            __all__ = ["Scorer"]

            class Scorer:
                name = "scorer"

                def __init__(self, alpha, beta):
                    self.alpha = alpha

                def __call__(self, stats):
                    return self.alpha
        """
    }
    assert "REP503" in program_rule_ids(sources)


def test_rep503_fires_on_post_construction_mutation():
    sources = {
        "m": """
            __all__ = ["Scorer"]

            class Scorer:
                name = "scorer"

                def __init__(self, alpha):
                    self.alpha = alpha

                def __call__(self, stats):
                    self.last = stats
                    return self.alpha
        """
    }
    assert "REP503" in program_rule_ids(sources)


def test_rep503_quiet_when_all_state_stored_at_init():
    sources = {
        "m": """
            __all__ = ["Scorer"]

            class Scorer:
                name = "scorer"

                def __init__(self, alpha, beta=2.0):
                    self.alpha = alpha
                    self.beta = beta

                def __call__(self, stats):
                    return self.alpha * self.beta
        """
    }
    assert "REP503" not in program_rule_ids(sources)


def test_rep503_quiet_on_classes_without_scoring_shape():
    sources = {
        "m": """
            __all__ = ["Ensemble"]

            class Ensemble:
                def __init__(self, samples, seed):
                    self.samples = samples

                def run(self):
                    return self.samples
        """
    }
    # No class-level ``name`` string and no __call__: not a scoring
    # function, so the tokens contract does not apply.
    assert "REP503" not in program_rule_ids(sources)


# -- REP607: per-group scalar scoring loop ------------------------------------

_REP607_LOOP = """
    __all__ = ["score"]

    def score(context, member_lists, functions):
        stats_list = batch_group_stats(context, member_lists)
        rows = [
            [float(function(stats)) for function in functions]
            for stats in stats_list
        ]
        return rows
"""


def test_rep607_fires_on_scalar_loop_in_engine():
    assert "REP607" in program_rule_ids({"repro.engine.fake": _REP607_LOOP})


def test_rep607_fires_on_scalar_loop_in_service():
    assert "REP607" in program_rule_ids({"repro.service.fake": _REP607_LOOP})


def test_rep607_fires_on_for_loop_variant():
    sources = {
        "repro.engine.fake": """
            __all__ = ["score"]

            def score(context, member_lists, functions):
                rows = []
                for stats in batch_group_stats(context, member_lists):
                    row = []
                    for function in functions:
                        row.append(function(stats))
                    rows.append(row)
                return rows
        """
    }
    assert "REP607" in program_rule_ids(sources)


def test_rep607_quiet_outside_engine_and_service():
    # The scalar oracle is legitimate in scoring/ (scalar_score_column),
    # tests and benchmarks; only engine/service hot paths are gated.
    assert "REP607" not in program_rule_ids(
        {"repro.scoring.fake": _REP607_LOOP}
    )


def test_rep607_quiet_on_columnar_path():
    sources = {
        "repro.engine.fake": """
            __all__ = ["score"]

            def score(context, member_lists, functions):
                batch = batch_group_stats_columns(context, member_lists)
                return score_matrix(functions, batch)
        """
    }
    assert "REP607" not in program_rule_ids(sources)


def test_rep607_quiet_on_stats_loop_without_function_dispatch():
    sources = {
        "repro.engine.fake": """
            __all__ = ["sizes"]

            def sizes(context, member_lists):
                stats_list = batch_group_stats(context, member_lists)
                return [stats.n_C for stats in stats_list]
        """
    }
    assert "REP607" not in program_rule_ids(sources)


# -- end-to-end through lint_paths --------------------------------------------


def _write_tree(tmp_path, sources: dict[str, str]):
    paths = []
    for relname, src in sorted(sources.items()):
        target = tmp_path / relname
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(src), encoding="utf-8")
        paths.append(target)
    return tmp_path


def test_lint_paths_merges_program_findings_into_file_output(tmp_path):
    tree = _write_tree(tmp_path, {"src/m.py": _REP401_BAD["m"]})
    config = LintConfig(select=("REP401",))
    violations = lint_paths([tree], config)
    assert [v.rule_id for v in violations] == ["REP401"]
    assert violations[0].path.endswith("m.py")


def test_lint_paths_jobs_output_identical_with_program_rules(tmp_path):
    tree = _write_tree(
        tmp_path,
        {
            "src/bad_worker.py": _REP401_BAD["m"],
            "src/bad_cache.py": _REP501_BAD["m"],
        },
    )
    config = LintConfig(select=("REP401", "REP501"))
    serial = [v.format() for v in lint_paths([tree], config, jobs=1)]
    parallel = [v.format() for v in lint_paths([tree], config, jobs=2)]
    assert serial == parallel
    assert any("REP401" in line for line in serial)
    assert any("REP501" in line for line in serial)


def test_lint_paths_survives_nested_classes(tmp_path):
    # Regression: a nested class used to crash build_program (KeyError on
    # the immediate class name) and take the whole lint run with it.
    tree = _write_tree(
        tmp_path,
        {
            "src/m.py": """
                __all__ = ["Outer"]

                class Outer:
                    class Inner:
                        def run(self):
                            return self.helper()

                        def helper(self):
                            return 1
            """
        },
    )
    config = LintConfig(select=("REP401", "REP501"))
    assert lint_paths([tree], config) == []


def test_lint_paths_survives_program_analysis_failure(tmp_path, monkeypatch, capsys):
    # The per-file pass must still report even if the interprocedural
    # layer dies on a pathological input.
    import repro.devtools.lint as lint_mod

    def boom(items):
        raise RuntimeError("synthetic analysis failure")

    monkeypatch.setattr(lint_mod, "build_program", boom)
    tree = _write_tree(tmp_path, {"src/m.py": _REP401_BAD["m"]})
    config = LintConfig(select=("REP401",))
    violations = lint_paths([tree], config)
    assert violations == []
    assert "interprocedural analysis failed" in capsys.readouterr().err


def test_program_findings_respect_noqa(tmp_path):
    suppressed = _REP401_BAD["m"].replace(
        "context.csr.indices[0] = 7",
        "context.csr.indices[0] = 7  # repro: noqa[REP401]",
    )
    tree = _write_tree(tmp_path, {"src/m.py": suppressed})
    config = LintConfig(select=("REP401",))
    assert lint_paths([tree], config) == []
