"""Graphicality tests and Havel-Hakimi realization, with hypothesis
cross-checks against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotGraphical
from repro.nullmodel.degree_sequence import (
    havel_hakimi_graph,
    is_digraphical,
    is_graphical,
)


class TestIsGraphical:
    def test_simple_cases(self):
        assert is_graphical([1, 1])
        assert is_graphical([2, 2, 2])
        assert is_graphical([3, 3, 3, 3])
        assert is_graphical([])

    def test_odd_sum_rejected(self):
        assert not is_graphical([1, 1, 1])

    def test_degree_exceeding_n_rejected(self):
        assert not is_graphical([3, 1, 1, 1][0:3])  # degree 3 with n=3

    def test_negative_rejected(self):
        assert not is_graphical([-1, 1])

    def test_classic_non_graphical(self):
        # Erdos-Gallai violation: one vertex wants everyone, another none.
        assert not is_graphical([4, 4, 4, 1, 1])

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=12)
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_networkx(self, degrees):
        assert is_graphical(degrees) == nx.is_graphical(degrees)


class TestIsDigraphical:
    def test_simple_cases(self):
        assert is_digraphical([1, 1], [1, 1])
        assert not is_digraphical([2, 0], [0, 1])
        assert not is_digraphical([1], [1])  # needs a self-loop

    def test_length_mismatch(self):
        assert not is_digraphical([1], [1, 0])

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_networkx(self, pairs):
        ins = [p[0] for p in pairs]
        outs = [p[1] for p in pairs]
        assert is_digraphical(ins, outs) == nx.is_digraphical(ins, outs)


class TestHavelHakimi:
    def test_realizes_exact_degrees(self):
        degrees = [3, 3, 2, 2, 2]
        graph = havel_hakimi_graph(degrees)
        assert sorted(graph.degree[v] for v in graph) == sorted(degrees)

    def test_simple_graph_no_duplicates(self):
        graph = havel_hakimi_graph([4, 4, 4, 4, 4])
        assert graph.number_of_edges() == 10  # complete graph on 5

    def test_zero_degrees_allowed(self):
        graph = havel_hakimi_graph([0, 0, 2, 1, 1])
        assert graph.degree[0] == 0
        assert graph.number_of_edges() == 2

    def test_non_graphical_raises(self):
        with pytest.raises(NotGraphical):
            havel_hakimi_graph([5, 1, 1])

    @given(
        st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=14)
    )
    @settings(max_examples=100, deadline=None)
    def test_property_realization(self, degrees):
        if not is_graphical(degrees):
            with pytest.raises(NotGraphical):
                havel_hakimi_graph(degrees)
            return
        graph = havel_hakimi_graph(degrees)
        assert sorted(graph.degree[v] for v in graph) == sorted(degrees)
