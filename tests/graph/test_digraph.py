"""Unit tests for the directed DiGraph substrate."""

import pytest

from repro.exceptions import EdgeNotFound, NodeNotFound
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty(self):
        graph = DiGraph()
        assert len(graph) == 0
        assert graph.number_of_edges() == 0

    def test_from_edges(self, small_digraph):
        assert small_digraph.number_of_nodes() == 4
        assert small_digraph.number_of_edges() == 4

    def test_is_directed_flag(self):
        assert DiGraph.is_directed is True


class TestEdgeDirection:
    def test_edge_is_directional(self):
        graph = DiGraph([(1, 2)])
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_reciprocal_pair_counts_twice(self):
        graph = DiGraph([(1, 2), (2, 1)])
        assert graph.number_of_edges() == 2

    def test_duplicate_directed_edge_ignored(self):
        graph = DiGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 2)
        assert graph.number_of_edges() == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DiGraph().add_edge("x", "x")

    def test_successors_predecessors(self, small_digraph):
        assert small_digraph.successors("b") == frozenset({"a", "c"})
        assert small_digraph.predecessors("b") == frozenset({"a"})

    def test_neighbors_ignores_direction(self, small_digraph):
        assert small_digraph.neighbors("c") == frozenset({"b", "d"})

    def test_missing_node_raises(self, small_digraph):
        with pytest.raises(NodeNotFound):
            small_digraph.successors("zz")
        with pytest.raises(NodeNotFound):
            small_digraph.predecessors("zz")


class TestDegrees:
    def test_total_degree_is_in_plus_out(self, small_digraph):
        assert small_digraph.degree["b"] == 3
        assert small_digraph.in_degree["b"] == 1
        assert small_digraph.out_degree["b"] == 2

    def test_degree_of_missing_node_raises(self, small_digraph):
        with pytest.raises(NodeNotFound):
            small_digraph.degree["nope"]

    def test_degree_sums_equal_edge_counts(self, small_digraph):
        m = small_digraph.number_of_edges()
        assert sum(small_digraph.in_degree.values()) == m
        assert sum(small_digraph.out_degree.values()) == m
        assert sum(small_digraph.degree.values()) == 2 * m


class TestMutation:
    def test_remove_edge(self, small_digraph):
        small_digraph.remove_edge("a", "b")
        assert not small_digraph.has_edge("a", "b")
        assert small_digraph.has_edge("b", "a")

    def test_remove_missing_edge_raises(self, small_digraph):
        with pytest.raises(EdgeNotFound):
            small_digraph.remove_edge("d", "c")

    def test_remove_node_updates_both_directions(self, small_digraph):
        small_digraph.remove_node("b")
        assert small_digraph.number_of_nodes() == 3
        assert small_digraph.number_of_edges() == 1  # only c -> d remains
        assert not small_digraph.has_edge("a", "b")

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFound):
            DiGraph().remove_node(1)

    def test_edge_count_consistent_after_mutations(self):
        graph = DiGraph([(i, i + 1) for i in range(8)])
        graph.add_edge(3, 1)
        graph.remove_node(2)
        listed = sum(1 for _ in graph.edges)
        assert graph.number_of_edges() == listed


class TestDerivedGraphs:
    def test_copy_is_independent(self, small_digraph):
        clone = small_digraph.copy()
        clone.remove_edge("b", "c")
        assert small_digraph.has_edge("b", "c")

    def test_subgraph_directed_edges(self, small_digraph):
        sub = small_digraph.subgraph(["a", "b"])
        assert sub.number_of_edges() == 2
        assert sub.has_edge("a", "b")
        assert sub.has_edge("b", "a")

    def test_subgraph_missing_node_raises(self, small_digraph):
        with pytest.raises(NodeNotFound):
            small_digraph.subgraph(["a", "zz"])

    def test_edge_boundary_includes_both_directions(self, small_digraph):
        boundary = small_digraph.edge_boundary(["b"])
        assert sorted(boundary) == [("a", "b"), ("b", "a"), ("b", "c")]

    def test_edge_boundary_counts_reciprocal_separately(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3)])
        boundary = graph.edge_boundary([1])
        assert sorted(boundary) == [(1, 2), (2, 1)]

    def test_reverse_flips_edges(self, small_digraph):
        reverse = small_digraph.reverse()
        assert reverse.has_edge("b", "a")
        assert reverse.has_edge("c", "b")
        assert reverse.has_edge("d", "c")
        assert reverse.number_of_edges() == small_digraph.number_of_edges()

    def test_reverse_is_independent_copy(self, small_digraph):
        reverse = small_digraph.reverse()
        reverse.remove_edge("d", "c")
        assert small_digraph.has_edge("c", "d")
