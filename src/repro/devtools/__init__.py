"""Correctness tooling for the repro codebase.

Three layers keep the reproduction's headline numbers trustworthy as the
codebase grows:

* **Static analysis** — :mod:`repro.devtools.lint` is the front end of a
  flow-sensitive lint engine: the stateless per-statement rules
  (REP001–REP006) live in ``lint.py``; :mod:`repro.devtools.dataflow`
  provides per-function scope tables, a CFG with def-use chains and
  origin tagging (RNG / graph / frozen / set-ordered values); and
  :mod:`repro.devtools.rules_flow` builds the RNG-discipline (REP1xx)
  and freeze-once-contract (REP2xx) rule families on top of it.
  :mod:`repro.devtools.report` renders text/JSON/SARIF output and
  :mod:`repro.devtools.baseline` implements the
  ``.repro-lint-baseline.json`` ratchet.  Runnable as
  ``python -m repro.devtools.lint src/`` or ``repro lint``.
* :mod:`repro.devtools.invariants` — runtime structural validation of
  :class:`~repro.graph.Graph` / :class:`~repro.graph.DiGraph` /
  :class:`~repro.graph.CSRGraph`, with an opt-in
  ``REPRO_CHECK_INVARIANTS=1`` mode that post-checks every mutating
  substrate operation.
* :mod:`repro.devtools.determinism` — runs registered stochastic
  pipelines twice under the same seed and diffs canonical serializations,
  catching order-dependent iteration and unseeded randomness at runtime.

The library proper never imports :mod:`repro.devtools` (except for the
lazy, opt-in invariant installation); the tooling depends on the library,
not the other way around.
"""

from __future__ import annotations

__all__ = [
    "lint",
    "dataflow",
    "rules_flow",
    "report",
    "baseline",
    "invariants",
    "determinism",
]
