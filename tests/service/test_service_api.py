"""End-to-end API tests: routes, error mapping, ETag/304, caching tiers.

Each test starts a real service on an ephemeral port (``service_runner``
fixture) and talks real HTTP over a real socket.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs import instruments


class TestSimpleEndpoints:
    def test_health_lists_datasets(self, service_runner):
        async def scenario(service, client):
            return await client.get_json("/v1/health")

        status, _, payload = service_runner(scenario)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["datasets"] == ["alpha", "beta"]
        assert payload["resident"] == []

    def test_datasets_and_residency(self, service_runner):
        async def scenario(service, client):
            await client.get_json("/v1/datasets/alpha")
            return await client.get_json("/v1/datasets")

        status, _, payload = service_runner(scenario)
        assert status == 200
        assert {"name": "alpha", "resident": True} in payload["datasets"]
        assert {"name": "beta", "resident": False} in payload["datasets"]

    def test_dataset_detail_carries_fingerprint(self, service_runner):
        async def scenario(service, client):
            return await client.get_json("/v1/datasets/alpha")

        status, _, payload = service_runner(scenario)
        assert status == 200
        assert payload["name"] == "alpha"
        assert payload["vertices"] > 0 and payload["edges"] > 0
        assert len(payload["fingerprint"]) == 16

    def test_groups_listing(self, service_runner):
        async def scenario(service, client):
            return await client.get_json("/v1/datasets/alpha/groups")

        status, _, payload = service_runner(scenario)
        assert status == 200
        assert payload["dataset"] == "alpha"
        assert all(g["size"] > 0 for g in payload["groups"])
        assert all(g["kind"] == "community" for g in payload["groups"])

    def test_metrics_endpoint_snapshots_registry(self, service_runner):
        async def scenario(service, client):
            return await client.get_json("/v1/metrics")

        status, _, payload = service_runner(scenario)
        assert status == 200
        assert "service.requests" in payload


class TestErrorMapping:
    def test_unknown_dataset_404(self, service_runner):
        async def scenario(service, client):
            return await client.get_json("/v1/datasets/nope/score")

        status, _, payload = service_runner(scenario)
        assert status == 404
        assert "unknown dataset" in payload["error"]["message"]

    def test_path_traversal_404(self, service_runner):
        async def scenario(service, client):
            return await client.request("GET", "/v1/datasets/%2e%2e/score")

        status, _, _ = service_runner(scenario)
        assert status == 404

    def test_unknown_group_404(self, service_runner):
        async def scenario(service, client):
            return await client.get_json(
                "/v1/datasets/alpha/score?groups=ghost"
            )

        status, _, payload = service_runner(scenario)
        assert status == 404
        assert "ghost" in payload["error"]["message"]

    def test_malformed_group_list_400(self, service_runner):
        async def scenario(service, client):
            return await client.get_json(
                "/v1/datasets/alpha/score?groups=a,,b"
            )

        status, _, payload = service_runner(scenario)
        assert status == 400
        assert "malformed" in payload["error"]["message"]

    def test_unknown_function_400(self, service_runner):
        async def scenario(service, client):
            return await client.get_json(
                "/v1/datasets/alpha/score?functions=bogus"
            )

        status, _, payload = service_runner(scenario)
        assert status == 400
        assert "unknown scoring function" in payload["error"]["message"]

    def test_unmatched_path_404(self, service_runner):
        async def scenario(service, client):
            return await client.get_json("/v2/whatever")

        status, _, _ = service_runner(scenario)
        assert status == 404

    def test_wrong_method_405(self, service_runner):
        async def scenario(service, client):
            return await client.request(
                "POST", "/v1/health", body=b"{}"
            )

        status, _, _ = service_runner(scenario)
        assert status == 405

    def test_compare_needs_two_datasets(self, service_runner):
        async def scenario(service, client):
            first = await client.get_json("/v1/compare")
            second = await client.get_json("/v1/compare?datasets=alpha")
            return first, second

        (s1, _, _), (s2, _, _) = service_runner(scenario)
        assert s1 == 400 and s2 == 400


class TestPostValidation:
    def post(self, service_runner, payload):
        async def scenario(service, client):
            return await client.request(
                "POST",
                "/v1/datasets/alpha/score",
                body=json.dumps(payload).encode(),
            )

        status, headers, body = service_runner(scenario)
        return status, json.loads(body) if body else None

    def test_adhoc_groups_score(self, service_runner):
        status, payload = self.post(
            service_runner,
            {"groups": [{"name": "mine", "members": [0, 1, 2, 3]}]},
        )
        assert status == 200
        assert payload["groups"][0]["name"] == "mine"
        assert payload["groups"][0]["size"] == 4

    def test_member_not_in_graph_400(self, service_runner):
        status, payload = self.post(
            service_runner,
            {"groups": [{"name": "g", "members": [999999]}]},
        )
        assert status == 400
        assert "not in dataset" in payload["error"]["message"]

    def test_non_object_body_400(self, service_runner):
        async def scenario(service, client):
            return await client.request(
                "POST", "/v1/datasets/alpha/score", body=b"[1,2]"
            )

        status, _, _ = service_runner(scenario)
        assert status == 400

    def test_malformed_members_400(self, service_runner):
        for bad in (
            {"groups": []},
            {"groups": [{"name": "g", "members": []}]},
            {"groups": [{"name": "", "members": [1]}]},
            {"groups": [{"name": "g", "members": [1.5]}]},
            {"groups": [{"name": "g", "members": [True]}]},
            {"groups": [
                {"name": "g", "members": [1]},
                {"name": "g", "members": [2]},
            ]},
        ):
            status, _ = self.post(service_runner, bad)
            assert status == 400, bad


class TestEtagAndCaching:
    def test_etag_revalidation_304(self, service_runner):
        async def scenario(service, client):
            status, headers, payload = await client.get_json(
                "/v1/datasets/alpha/score"
            )
            etag = headers["etag"]
            status2, headers2, body2 = await client.request(
                "GET",
                "/v1/datasets/alpha/score",
                headers={"If-None-Match": etag},
            )
            return status, etag, payload, status2, headers2, body2

        status, etag, payload, status2, headers2, body2 = service_runner(
            scenario
        )
        assert status == 200
        assert etag == f'"{payload["etag"]}"' if "etag" in payload else etag
        assert status2 == 304
        assert body2 == b""
        assert headers2["etag"] == etag

    def test_repeat_query_hits_memory_cache(self, service_runner):
        async def scenario(service, client):
            await client.get_json("/v1/datasets/alpha/score")
            before = instruments.SERVICE_MEMORY_HITS.total()
            _, _, repeat = await client.get_json("/v1/datasets/alpha/score")
            return before, instruments.SERVICE_MEMORY_HITS.total(), repeat

        before, after, _ = service_runner(scenario)
        assert after == before + 1

    def test_distinct_queries_distinct_etags(self, service_runner):
        async def scenario(service, client):
            _, _, listing = await client.get_json(
                "/v1/datasets/alpha/groups"
            )
            names = [g["name"] for g in listing["groups"]]
            _, h1, _ = await client.get_json(
                f"/v1/datasets/alpha/score?groups={names[0]}"
            )
            _, h2, _ = await client.get_json(
                f"/v1/datasets/alpha/score?groups={names[1]}"
            )
            _, h3, _ = await client.get_json(
                "/v1/datasets/alpha/score?functions=conductance"
            )
            _, h4, _ = await client.get_json("/v1/datasets/alpha/score")
            return [h["etag"] for h in (h1, h2, h3, h4)]

        etags = service_runner(scenario)
        assert len(set(etags)) == 4

    def test_compare_summaries_and_304(self, service_runner):
        async def scenario(service, client):
            status, headers, payload = await client.get_json(
                "/v1/compare?datasets=alpha,beta"
            )
            status2, _, _ = await client.request(
                "GET",
                "/v1/compare?datasets=alpha,beta",
                headers={"If-None-Match": headers["etag"]},
            )
            return status, payload, status2

        status, payload, status2 = service_runner(scenario)
        assert status == 200
        assert [d["name"] for d in payload["datasets"]] == ["alpha", "beta"]
        assert all("summary" in d for d in payload["datasets"])
        assert status2 == 304


class TestConcurrency:
    def test_concurrent_requests_micro_batch(self, service_runner, client_class):
        """Parallel identical-shape queries coalesce into few batches."""

        async def scenario(service, client):
            _, _, listing = await client.get_json(
                "/v1/datasets/alpha/groups"
            )
            names = [g["name"] for g in listing["groups"]]
            clients = [client_class(*service.address) for _ in range(6)]
            for extra in clients:
                await extra.connect()
            before = instruments.SERVICE_BATCHES.total()
            try:
                results = await asyncio.gather(
                    *(
                        extra.get_json(
                            f"/v1/datasets/alpha/score?groups={name}"
                        )
                        for extra, name in zip(clients, names)
                    )
                )
            finally:
                for extra in clients:
                    await extra.close()
            flushed = instruments.SERVICE_BATCHES.total() - before
            return results, flushed

        results, flushed = service_runner(scenario, batch_window=0.05)
        assert all(status == 200 for status, _, _ in results)
        for status, _, payload in results:
            assert len(payload["groups"]) == 1
        # Six concurrent one-group queries inside one 50 ms window must
        # not cost six engine invocations.
        assert 1 <= flushed < 6
