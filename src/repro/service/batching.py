"""Micro-batching: coalesce concurrent score requests into one kernel pass.

Under concurrent load many requests ask the same dataset for scores
within the same few milliseconds.  Scoring them one by one would pay
the batch kernel's setup per request; the engine is fastest when it
sees *many groups at once*.  The :class:`MicroBatcher` therefore queues
requests per ``(dataset, functions)`` coalescing key, waits up to
``window`` seconds for siblings to arrive (flushing early at
``max_batch``), and runs the union of all pending groups through a
single columnar :func:`~repro.scoring.columnar.score_stats_columns` /
:meth:`~repro.engine.ParallelExecutor.score_groups` invocation.  Each
request then receives exactly its own slice of the combined sizes and
``(G, F)`` score matrix.

Scoring runs on a worker thread (``loop.run_in_executor``) so the event
loop keeps accepting connections while a batch computes.  Results are
byte-identical to a serial :func:`repro.scoring.registry.score_groups`
call because the serial/parallel split and the per-function evaluation
mirror that code path exactly.
"""

from __future__ import annotations

import asyncio
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.engine import AnalysisContext, ParallelExecutor
from repro.obs import instruments
from repro.scoring.base import ScoringFunction
from repro.scoring.columnar import score_stats_columns
from repro.scoring.internal import (
    FractionOverMedianDegree,
    TriangleParticipationRatio,
)

Node = Hashable

__all__ = ["MicroBatcher", "ScoreRequest", "score_member_lists"]


def score_member_lists(
    context: AnalysisContext,
    member_lists: Sequence[Sequence[Node]],
    id_lists: Sequence[np.ndarray],
    functions: Sequence[ScoringFunction],
    executor: ParallelExecutor | None = None,
) -> tuple[list[int], np.ndarray]:
    """Score member lists exactly like ``score_groups`` would.

    Returns per-group deduplicated sizes and the ``(G, F)`` float64
    score matrix (one column per function, in function order).  The
    serial path feeds *labels* to the shared columnar helper
    (:func:`~repro.scoring.columnar.score_stats_columns`) and the
    parallel path feeds *vertex ids* to the executor — the same split
    :func:`repro.scoring.registry.score_groups` makes, which is what
    keeps service responses byte-identical to CLI output.
    """
    median = (
        context.median_degree
        if any(isinstance(f, FractionOverMedianDegree) for f in functions)
        else None
    )
    include_adjacency = any(
        isinstance(f, TriangleParticipationRatio) for f in functions
    )
    if executor is not None and executor.active and member_lists:
        sizes, rows = executor.score_groups(
            list(id_lists),
            functions,
            graph_median_degree=median,
            include_internal_adjacency=include_adjacency,
        )
        return sizes, rows
    return score_stats_columns(
        context,
        member_lists,
        functions,
        graph_median_degree=median,
        include_internal_adjacency=include_adjacency,
    )


@dataclass
class ScoreRequest:
    """One request's share of a micro-batch: its groups and its future."""

    names: list[str]
    member_lists: list[list[Node]]
    id_lists: list[np.ndarray]
    future: asyncio.Future = field(repr=False)


@dataclass
class _BatchState:
    """Pending requests for one coalescing key plus the flush timer."""

    context: AnalysisContext
    functions: Sequence[ScoringFunction]
    executor: ParallelExecutor | None
    pending: list[ScoreRequest] = field(default_factory=list)
    handle: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Request coalescer over the engine's batch scoring entry points.

    One instance serves every dataset; batches never mix coalescing
    keys, so a key is ``(dataset name, functions signature)`` — two
    requests scoring different function sets stay in separate kernel
    invocations (their GroupStats requirements differ).
    """

    def __init__(
        self, *, window: float = 0.005, max_batch: int = 64
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window = window
        self.max_batch = max_batch
        self._states: dict[tuple, _BatchState] = {}
        self._inflight: set[asyncio.Task] = set()

    async def submit(
        self,
        key: tuple,
        context: AnalysisContext,
        functions: Sequence[ScoringFunction],
        executor: ParallelExecutor | None,
        names: list[str],
        member_lists: list[list[Node]],
        id_lists: list[np.ndarray],
    ) -> tuple[list[int], np.ndarray]:
        """Queue one request under ``key``; await its slice of the batch."""
        loop = asyncio.get_running_loop()
        state = self._states.get(key)
        if state is None:
            state = _BatchState(
                context=context, functions=functions, executor=executor
            )
            self._states[key] = state
        request = ScoreRequest(
            names=names,
            member_lists=member_lists,
            id_lists=id_lists,
            future=loop.create_future(),
        )
        state.pending.append(request)
        if sum(len(r.names) for r in state.pending) >= self.max_batch:
            self._flush(key)
        elif state.handle is None:
            state.handle = loop.call_later(
                self.window, self._flush, key
            )
        return await request.future

    def _flush(self, key: tuple) -> None:
        state = self._states.pop(key, None)
        if state is None or not state.pending:
            return
        if state.handle is not None:
            state.handle.cancel()
            state.handle = None
        task = asyncio.get_running_loop().create_task(
            self._run_batch(state)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, state: _BatchState) -> None:
        requests = state.pending
        instruments.SERVICE_BATCHES.inc()
        instruments.SERVICE_BATCH_SIZE.observe(len(requests))
        member_lists: list[list[Node]] = []
        id_lists: list[np.ndarray] = []
        for request in requests:
            member_lists.extend(request.member_lists)
            id_lists.extend(request.id_lists)
        loop = asyncio.get_running_loop()
        try:
            sizes, rows = await loop.run_in_executor(
                None,
                score_member_lists,
                state.context,
                member_lists,
                id_lists,
                state.functions,
                state.executor,
            )
        except BaseException as exc:  # repro: noqa[REP006] - fan the failure out to every waiter
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        offset = 0
        for request in requests:
            stop = offset + len(request.names)
            if not request.future.done():
                request.future.set_result(
                    (sizes[offset:stop], rows[offset:stop])
                )
            offset = stop

    async def drain(self) -> None:
        """Flush every queue and wait for all in-flight batches.

        The graceful-shutdown path: requests already queued still get
        answers; nothing new may be submitted afterwards.
        """
        for key in list(self._states):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def __repr__(self) -> str:
        queued = sum(len(s.pending) for s in self._states.values())
        return (
            f"<MicroBatcher window={self.window} queued={queued} "
            f"inflight={len(self._inflight)}>"
        )
