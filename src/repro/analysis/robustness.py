"""Directed-vs-undirected robustness check (paper section IV-B).

The paper verifies that comparing directed circle corpora against
undirected community corpora is fair: scoring the Google+/Twitter groups
on an undirected representation (reciprocal edges collapsed) deviates by
only ~2.38 % on average, too little to affect any conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.data.datasets import Dataset
from repro.engine import AnalysisContext
from repro.graph.convert import to_undirected
from repro.obs import capture_manifest, instruments
from repro.scoring.base import ScoringFunction
from repro.scoring.registry import ScoreTable, make_paper_functions, score_groups

__all__ = ["RobustnessResult", "directed_vs_undirected"]


@dataclass
class RobustnessResult:
    """Scores of the same groups on directed vs undirected representations."""

    dataset: str
    directed_scores: ScoreTable = field(repr=False)
    undirected_scores: ScoreTable = field(repr=False)

    def relative_deviation(self, function_name: str) -> float:
        """Mean relative deviation of one function between representations.

        For each group, ``|directed - undirected| / max(|directed|, eps)``;
        groups scoring exactly zero in both representations contribute 0.
        """
        directed = self.directed_scores.scores(function_name)
        undirected = self.undirected_scores.scores(function_name)
        finite = np.isfinite(directed) & np.isfinite(undirected)
        directed = directed[finite]
        undirected = undirected[finite]
        scale = np.maximum(np.abs(directed), np.abs(undirected))
        deviation = np.where(
            scale > 1e-12, np.abs(directed - undirected) / np.maximum(scale, 1e-12), 0.0
        )
        return float(deviation.mean()) if deviation.size else 0.0

    def rank_correlation(self, function_name: str) -> float:
        """Spearman rank correlation of the two representations' scores.

        The paper's conclusion only needs the *ordering* of groups to be
        preserved; a correlation near 1 means direction handling cannot
        flip any comparison.
        """
        directed = self.directed_scores.scores(function_name)
        undirected = self.undirected_scores.scores(function_name)
        finite = np.isfinite(directed) & np.isfinite(undirected)
        directed = directed[finite]
        undirected = undirected[finite]
        if directed.size < 2:
            return 1.0
        ranks_directed = np.argsort(np.argsort(directed))
        ranks_undirected = np.argsort(np.argsort(undirected))
        if ranks_directed.std() == 0 or ranks_undirected.std() == 0:
            return 1.0
        return float(np.corrcoef(ranks_directed, ranks_undirected)[0, 1])

    def cdf_distance(self, function_name: str) -> float:
        """KS distance between the two representations' score CDFs,
        after rescaling each sample by its mean (shape-only comparison).

        Count-based scores (Average Degree) scale trivially with the
        reciprocated-edge fraction when reciprocal pairs collapse; the
        paper's "minimal deviation of about 2.38 %" is a statement about
        the score *distributions* used in the evaluation, which this
        measure captures.
        """
        directed = self.directed_scores.scores(function_name)
        undirected = self.undirected_scores.scores(function_name)
        directed = directed[np.isfinite(directed)]
        undirected = undirected[np.isfinite(undirected)]
        if directed.size == 0 or undirected.size == 0:
            return 0.0
        directed_scale = np.abs(directed).mean() or 1.0
        undirected_scale = np.abs(undirected).mean() or 1.0
        a = np.sort(directed / directed_scale)
        b = np.sort(undirected / undirected_scale)
        grid = np.union1d(a, b)
        cdf_a = np.searchsorted(a, grid, side="right") / a.size
        cdf_b = np.searchsorted(b, grid, side="right") / b.size
        return float(np.abs(cdf_a - cdf_b).max())

    def overall_deviation(self) -> float:
        """Average per-group relative deviation over all scored functions."""
        names = self.directed_scores.function_names()
        if not names:
            return 0.0
        return float(
            np.mean([self.relative_deviation(name) for name in names])
        )

    def summary(self) -> dict[str, float]:
        """Per-function deviations, rank correlations, and CDF distances."""
        report: dict[str, float] = {}
        for name in self.directed_scores.function_names():
            report[f"{name}/relative_deviation"] = self.relative_deviation(name)
            report[f"{name}/rank_correlation"] = self.rank_correlation(name)
            report[f"{name}/cdf_distance"] = self.cdf_distance(name)
        report["overall_relative_deviation"] = self.overall_deviation()
        return report


def directed_vs_undirected(
    dataset: Dataset,
    *,
    functions: list[ScoringFunction] | None = None,
    min_group_size: int = 2,
    context: AnalysisContext | None = None,
    jobs: int | None = None,
    cache: "object | None" = None,
) -> RobustnessResult:
    """Score ``dataset``'s groups on both edge representations.

    Requires a directed data set (the check is only meaningful there).
    The undirected representation collapses each reciprocal pair to a
    single edge, exactly as described in section IV-B.  Each
    representation is frozen into one
    :class:`~repro.engine.AnalysisContext`; ``context`` may supply an
    existing freeze of the *directed* graph.  ``jobs``/``cache`` forward
    to :func:`~repro.scoring.registry.score_groups` per representation
    (two contexts, two shared-memory exports).
    """
    if not dataset.directed:
        raise ValueError("the robustness check requires a directed data set")
    functions = functions or make_paper_functions()
    groups = dataset.groups.filter_by_size(minimum=min_group_size)
    with obs.span("experiment.directed_vs_undirected"):
        directed_context = AnalysisContext.ensure(
            context if context is not None else dataset.graph
        )
        directed_scores = score_groups(
            directed_context, groups, functions, jobs=jobs, cache=cache
        )
        undirected_context = AnalysisContext(to_undirected(dataset.graph))
        undirected_scores = score_groups(
            undirected_context, groups, functions, jobs=jobs, cache=cache
        )
        if obs.enabled():
            instruments.EXPERIMENT_RUNS.inc(label="directed_vs_undirected")
            obs.record_manifest(
                capture_manifest(
                    "directed_vs_undirected",
                    contexts={
                        f"{dataset.name}-directed": directed_context,
                        f"{dataset.name}-undirected": undirected_context,
                    },
                    functions=[function.name for function in functions],
                )
            )
    return RobustnessResult(
        dataset=dataset.name,
        directed_scores=directed_scores,
        undirected_scores=undirected_scores,
    )
