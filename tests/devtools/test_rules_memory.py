"""True/false-positive tests for the memory-contract rules (REP605/606).

The headline firing test seeds the exact regression class the contract
layer exists to catch: a ``@bounded_memory`` freeze that accumulates
every chunk and ``np.concatenate``'s them — O(m) RAM behind an
O(chunk + n) promise.  The quiet tests pin the legitimate shapes the
real freeze path uses (per-chunk resets, contract-carrying sinks bound
via ``with``, audited in-RAM paths) so the rules stay adoptable.
"""

from __future__ import annotations

import textwrap

from repro.devtools.callgraph import build_program
from repro.devtools.lint import MEMORY_RULES, main
from repro.devtools.rules_memory import bounded_closure, bounded_entries


def _program(sources: dict[str, str]):
    items = [
        (modname, f"src/{modname.replace('.', '/')}.py",
         textwrap.dedent(src))
        for modname, src in sorted(sources.items())
    ]
    return build_program(items)


def rule_ids(sources: dict[str, str]) -> list[str]:
    found: list[str] = []
    for rule_cls in MEMORY_RULES:
        for violation in rule_cls().check_program(_program(sources)):
            found.append(violation.rule_id)
    return found


# -- the closure --------------------------------------------------------------


def test_bounded_entries_carry_their_contract_strings():
    program = _program(
        {
            "m": """
                from repro.devtools.contracts import bounded_memory
                __all__ = ["freeze"]

                @bounded_memory("chunk+n")
                def freeze(stream):
                    return None
            """
        }
    )
    assert bounded_entries(program) == {"m:freeze": "chunk+n"}


def test_bounded_closure_reaches_helpers_and_overrides():
    program = _program(
        {
            "m": """
                from repro.devtools.contracts import bounded_memory
                __all__ = ["Base", "Sub", "freeze"]

                class Base:
                    def chunks(self):
                        return []

                class Sub(Base):
                    def chunks(self):
                        return [1]

                def _helper(stream):
                    return stream

                @bounded_memory("chunk")
                def freeze(stream: Base):
                    _helper(stream)
                    return stream.chunks()
            """
        }
    )
    closure = bounded_closure(program)
    assert closure["m:freeze"] == "m:freeze"
    assert "m:_helper" in closure
    # Virtual dispatch: reaching Base.chunks pulls in the Sub override.
    assert "m:Base.chunks" in closure
    assert "m:Sub.chunks" in closure


# -- REP605: whole-stream materialization -------------------------------------


SEEDED_FAULT = {
    "m": """
        import numpy as np
        from repro.devtools.contracts import bounded_memory
        from repro.graph.io.edgelist import iter_edge_chunks
        __all__ = ["freeze"]

        @bounded_memory("chunk+n")
        def freeze(path):
            chunks = []
            for us, vs in iter_edge_chunks(path):
                chunks.append(us)
            return np.concatenate(chunks)
    """
}


def test_rep605_fires_on_the_seeded_concatenate_fault():
    assert "REP605" in rule_ids(SEEDED_FAULT)


def test_rep605_fires_in_a_helper_reached_from_the_entry():
    assert "REP605" in rule_ids(
        {
            "m": """
                from repro.devtools.contracts import bounded_memory
                from repro.graph.io.edgelist import iter_edge_chunks
                __all__ = ["freeze"]

                def _collect(path):
                    out = []
                    for us, vs in iter_edge_chunks(path):
                        out.extend(us)
                    return out

                @bounded_memory("chunk+n")
                def freeze(path):
                    return _collect(path)
            """
        }
    )


def test_rep605_fires_on_list_over_a_stream_iterator():
    assert "REP605" in rule_ids(
        {
            "m": """
                from repro.devtools.contracts import bounded_memory
                from repro.graph.io.edgelist import iter_edge_chunks
                __all__ = ["freeze"]

                @bounded_memory("chunk")
                def freeze(path):
                    return list(iter_edge_chunks(path))
            """
        }
    )


def test_rep605_fires_on_concatenate_over_a_stream_comprehension():
    assert "REP605" in rule_ids(
        {
            "m": """
                import numpy as np
                from repro.devtools.contracts import bounded_memory
                from repro.graph.io.edgelist import iter_edge_chunks
                __all__ = ["freeze"]

                @bounded_memory("chunk")
                def freeze(path):
                    return np.concatenate(
                        [us for us, vs in iter_edge_chunks(path)]
                    )
            """
        }
    )


def test_rep605_quiet_when_the_accumulator_resets_per_chunk():
    assert "REP605" not in rule_ids(
        {
            "m": """
                from repro.devtools.contracts import bounded_memory
                from repro.graph.io.edgelist import iter_edge_chunks
                __all__ = ["freeze"]

                @bounded_memory("chunk")
                def freeze(path, emit):
                    batch = []
                    for us, vs in iter_edge_chunks(path):
                        batch.append(us)
                        emit(batch)
                        batch = []
            """
        }
    )


def test_rep605_quiet_on_contract_carrying_with_sink():
    # `with Spiller(...) as spill` binds the receiver to a class whose
    # own @bounded_memory contract covers the growth.
    assert "REP605" not in rule_ids(
        {
            "m": """
                from repro.devtools.contracts import bounded_memory
                from repro.graph.io.edgelist import iter_edge_chunks
                __all__ = ["Spiller", "freeze"]

                @bounded_memory("run")
                class Spiller:
                    def __enter__(self):
                        return self

                    def __exit__(self, *exc_info):
                        return None

                    def add(self, keys):
                        return None

                @bounded_memory("chunk+n")
                def freeze(path):
                    with Spiller() as spill:
                        for us, vs in iter_edge_chunks(path):
                            spill.add(us)
            """
        }
    )


def test_rep605_quiet_on_audited_in_ram_functions():
    sources = {
        "m": SEEDED_FAULT["m"].replace(
            "from repro.devtools.contracts import bounded_memory",
            "from repro.devtools.contracts import audited_in_ram, "
            "bounded_memory",
        ).replace(
            '@bounded_memory("chunk+n")',
            '@audited_in_ram("fixture: bounded by the test harness")',
        )
    }
    assert "REP605" not in rule_ids(sources)


# -- REP606: unannotated stream consumers -------------------------------------


def test_rep606_fires_on_unannotated_reached_consumer():
    assert "REP606" in rule_ids(
        {
            "m": """
                from repro.devtools.contracts import bounded_memory
                from repro.graph.io.edgelist import iter_edge_chunks
                __all__ = ["freeze"]

                def _walk(path, sink):
                    for us, vs in iter_edge_chunks(path):
                        sink(us, vs)

                @bounded_memory("chunk")
                def freeze(path, sink):
                    _walk(path, sink)
            """
        }
    )


def test_rep606_fires_on_an_unannotated_subclass_override():
    assert "REP606" in rule_ids(
        {
            "m": """
                from repro.devtools.contracts import bounded_memory
                from repro.graph.io.edgelist import iter_edges
                __all__ = ["Base", "Sub", "freeze"]

                class Base:
                    def walk(self, path, sink):
                        return None

                class Sub(Base):
                    def walk(self, path, sink):
                        for u, v in iter_edges(path):
                            sink(u, v)

                @bounded_memory("chunk")
                def freeze(stream: Base, path, sink):
                    stream.walk(path, sink)
            """
        }
    )


def test_rep606_quiet_when_the_consumer_states_a_contract():
    assert "REP606" not in rule_ids(
        {
            "m": """
                from repro.devtools.contracts import bounded_memory
                from repro.graph.io.edgelist import iter_edge_chunks
                __all__ = ["freeze"]

                @bounded_memory("chunk")
                def _walk(path, sink):
                    for us, vs in iter_edge_chunks(path):
                        sink(us, vs)

                @bounded_memory("chunk")
                def freeze(path, sink):
                    _walk(path, sink)
            """
        }
    )


def test_rep606_quiet_outside_the_bounded_closure():
    # An unannotated stream consumer nothing bounded calls is REP606's
    # business only once it enters the closure.
    assert "REP606" not in rule_ids(
        {
            "m": """
                from repro.graph.io.edgelist import iter_edge_chunks
                __all__ = ["walk"]

                def walk(path, sink):
                    for us, vs in iter_edge_chunks(path):
                        sink(us, vs)
            """
        }
    )


# -- command-line surface -----------------------------------------------------


def test_rep605_jobs_output_is_byte_identical(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(
        textwrap.dedent(SEEDED_FAULT["m"]), encoding="utf-8"
    )
    (tmp_path / "clean.py").write_text(
        '"""Clean."""\n__all__ = []\n', encoding="utf-8"
    )
    base = [
        str(tmp_path),
        "--no-config",
        "--select",
        "REP605",
        "--baseline",
        str(tmp_path / "bl"),
    ]
    code_serial = main(base)
    serial = capsys.readouterr().out
    code_parallel = main([*base, "--jobs", "2"])
    parallel = capsys.readouterr().out
    assert code_serial == code_parallel == 1
    assert serial == parallel
    assert "REP605" in serial


def test_main_explain_rep605_prints_examples(capsys):
    assert main(["--explain", "REP605"]) == 0
    out = capsys.readouterr().out
    assert "REP605" in out
    assert "Bad:" in out and "Good:" in out
    assert "bounded_memory" in out
