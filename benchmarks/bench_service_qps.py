#!/usr/bin/env python
"""Service QPS/latency benchmark (the service tentpole's receipt).

Freezes a synthetic Google+ corpus into a ``repro-csr-dir`` store,
starts an in-process :class:`repro.service.CircleService` on an
ephemeral port, and drives it with a concurrent asyncio load generator
over persistent connections, in three phases:

* **cold** — every request is a *distinct* query (a different stored
  group subset), so each one reaches the engine through the micro
  batcher;
* **warm** — the same queries again: answered from the in-memory
  rendered-response cache / on-disk result cache, no engine work;
* **revalidate** — the same queries once more with ``If-None-Match``
  set to the cold run's ETags: all 304s, no bodies.

The report records per-phase QPS and p50/p99 latency plus the
``warm_speedup_p50`` ratio.  Two assertions have no escape hatch:

* every response has the expected status (200 / 200 / 304);
* the service's score columns are **bitwise identical** to a direct
  :func:`repro.scoring.registry.score_groups` call over the same store
  (JSON float round-trip is exact, so this is a real receipt).

The acceptance gate — warm p50 at least ``MIN_WARM_SPEEDUP``× lower
than cold p50 — is asserted in full mode and in ``--smoke`` mode (the
``scripts/check.sh`` configuration: small corpus, fewer requests)::

    python benchmarks/bench_service_qps.py                  # full
    python benchmarks/bench_service_qps.py --smoke -o BENCH_service.json
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: Required cold-p50 / warm-p50 ratio (the PR's acceptance criterion).
MIN_WARM_SPEEDUP = 5.0

#: Load-generator connections (each one a persistent keep-alive socket).
DEFAULT_WORKERS = 8

SEED = 0


def _build_store(root: Path, smoke: bool) -> str:
    """Freeze a synthetic Google+ corpus (with sidecar) under ``root``."""
    from repro.data.groups import save_groups
    from repro.engine import AnalysisContext
    from repro.synth.paper_datasets import GOOGLE_PLUS_CONFIG, build_google_plus

    config = dataclasses.replace(
        GOOGLE_PLUS_CONFIG, num_egos=16 if smoke else 40
    )
    dataset = build_google_plus(config=config)
    context = AnalysisContext(dataset.graph)
    store = context.save(root / "gplus")
    save_groups(dataset.groups, store / "groups.json")
    return "gplus"


class _Client:
    """Minimal pipelining-free HTTP/1.1 client over one keep-alive socket."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.reader = self.writer = None

    async def request(
        self, path: str, headers: dict[str, str] | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        if self.writer is None:
            await self.connect()
        assert self.reader is not None and self.writer is not None
        lines = [f"GET {path} HTTP/1.1", f"Host: {self.host}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self.writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await self.writer.drain()

        status_line = await self.reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        response_headers: dict[str, str] = {}
        while True:
            raw = await self.reader.readline()
            if not raw.strip():
                break
            name, _, value = raw.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        body = await self.reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            await self.close()
        return status, response_headers, body


async def _run_phase(
    host: str,
    port: int,
    jobs: list[tuple[str, dict[str, str]]],
    expect_status: int,
    workers: int,
) -> tuple[dict, list[tuple[str, dict[str, str], bytes]]]:
    """Drive ``jobs`` through ``workers`` persistent connections."""
    queue: asyncio.Queue = asyncio.Queue()
    for job in jobs:
        queue.put_nowait(job)
    latencies: list[float] = []
    responses: list[tuple[str, dict[str, str], bytes]] = []

    async def worker() -> None:
        client = _Client(host, port)
        await client.connect()
        try:
            while True:
                try:
                    path, headers = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                start = time.perf_counter()
                status, response_headers, body = await client.request(
                    path, headers
                )
                latencies.append(time.perf_counter() - start)
                if status != expect_status:
                    raise AssertionError(
                        f"{path}: expected {expect_status}, got {status}: "
                        f"{body[:200]!r}"
                    )
                responses.append((path, response_headers, body))
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(workers)))
    elapsed = time.perf_counter() - started
    ordered = sorted(latencies)
    report = {
        "requests": len(jobs),
        "seconds": round(elapsed, 4),
        "qps": round(len(jobs) / elapsed, 2),
        "p50_ms": round(statistics.median(ordered) * 1e3, 3),
        "p99_ms": round(ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))] * 1e3, 3),
    }
    return report, responses


def _assert_bitwise_identity(store_dir: Path, payload: dict) -> None:
    """The service's full-groupset scores must equal ``score_groups``'s."""
    from repro.data.groups import load_groups
    from repro.engine import AnalysisContext
    from repro.scoring.registry import score_groups

    context = AnalysisContext.open(store_dir)
    groups = load_groups(store_dir / "groups.json")
    table = score_groups(context, groups, cache=False)
    by_name = {g["name"]: g for g in payload["groups"]}
    assert list(by_name) == table.group_names, "group order/name mismatch"
    for function_name in table.function_names():
        reference = table.columns[function_name]
        served = np.array(
            [
                float("nan")
                if by_name[name]["scores"][function_name] == "nan"
                else float(by_name[name]["scores"][function_name])
                for name in table.group_names
            ],
            dtype=np.float64,
        )
        assert reference.tobytes() == served.tobytes(), (
            f"column {function_name!r} differs from score_groups"
        )


async def _bench(args: argparse.Namespace, root: Path) -> dict:
    from repro.service import CircleService, ServiceConfig

    dataset = _build_store(root, args.smoke)
    service = CircleService(
        ServiceConfig(
            root=root,
            port=0,
            cache=str(root / "cache"),
            jobs=1,
        )
    )
    await service.start()
    assert service.address is not None
    host, port = service.address
    try:
        probe = _Client(host, port)
        status, _, body = await probe.request(
            f"/v1/datasets/{dataset}/groups"
        )
        assert status == 200, body
        group_names = [g["name"] for g in json.loads(body)["groups"]]
        await probe.close()

        # Distinct queries: sliding windows over the stored group names.
        # Wide windows keep the cold phase engine-bound (scoring work per
        # request well above the event loop's ~ms round-trip floor), so
        # the warm-speedup gate measures caching, not loop scheduling.
        # ... but never so wide that the sliding starts stop producing
        # `requests` distinct queries (repeats would hit the warm cache
        # mid-cold-phase and fake a low cold p50).
        count = args.requests
        window = max(2, len(group_names) // 2)
        window = min(window, max(2, len(group_names) - count))
        queries = []
        for i in range(count):
            start = i % max(1, len(group_names) - window)
            subset = ",".join(group_names[start : start + window])
            queries.append(f"/v1/datasets/{dataset}/score?groups={subset}")

        cold, cold_responses = await _run_phase(
            host, port, [(q, {}) for q in queries], 200, args.workers
        )
        etags = {path: headers["etag"] for path, headers, _ in cold_responses}
        warm, _ = await _run_phase(
            host, port, [(q, {}) for q in queries], 200, args.workers
        )
        revalidate, _ = await _run_phase(
            host,
            port,
            [(q, {"If-None-Match": etags[q]}) for q in queries],
            304,
            args.workers,
        )

        full = _Client(host, port)
        status, _, body = await full.request(f"/v1/datasets/{dataset}/score")
        assert status == 200, body
        await full.close()
        _assert_bitwise_identity(root / dataset, json.loads(body))

        status, _, metrics_body = await _metrics(host, port)
        assert status == 200
    finally:
        await service.shutdown()

    speedup = cold["p50_ms"] / warm["p50_ms"] if warm["p50_ms"] else float("inf")
    return {
        "mode": "smoke" if args.smoke else "full",
        "dataset": dataset,
        "workers": args.workers,
        "phases": {"cold": cold, "warm": warm, "revalidate": revalidate},
        "warm_speedup_p50": round(speedup, 2),
        "identity": "bitwise-identical to score_groups",
        "metrics": json.loads(metrics_body),
    }


async def _metrics(host: str, port: int):
    client = _Client(host, port)
    try:
        return await client.request("/v1/metrics")
    finally:
        await client.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus and request count (the check.sh gate)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="requests per phase (default: 40 smoke, 200 full)",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS, metavar="N"
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail if the whole benchmark exceeds this wall time",
    )
    parser.add_argument("-o", "--output", metavar="FILE", default=None)
    args = parser.parse_args(argv)
    if args.requests is None:
        args.requests = 40 if args.smoke else 200

    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        report = asyncio.run(_bench(args, Path(tmp)))
    report["wall_seconds"] = round(time.perf_counter() - started, 2)

    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    print(rendered)

    if report["warm_speedup_p50"] < MIN_WARM_SPEEDUP:
        print(
            f"FAIL: warm p50 speedup {report['warm_speedup_p50']}x "
            f"< required {MIN_WARM_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    if args.time_budget and report["wall_seconds"] > args.time_budget:
        print(
            f"FAIL: wall time {report['wall_seconds']}s "
            f"> budget {args.time_budget}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
