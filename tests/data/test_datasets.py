"""Dataset bundle and paper-registry tests."""

from repro.data.datasets import MAGNO_REFERENCE, PAPER_DATASETS, Dataset


class TestPaperRegistry:
    def test_four_corpora(self):
        assert set(PAPER_DATASETS) == {
            "google_plus",
            "twitter",
            "livejournal",
            "orkut",
        }

    def test_table3_published_numbers(self):
        spec = PAPER_DATASETS["google_plus"]
        assert spec.vertices == 107_614
        assert spec.edges == 13_673_453
        assert spec.num_groups == 468
        assert spec.directed
        assert spec.structure == "circles"
        assert PAPER_DATASETS["orkut"].edges == 117_185_083
        assert not PAPER_DATASETS["livejournal"].directed

    def test_google_plus_extras(self):
        extras = PAPER_DATASETS["google_plus"].extras
        assert extras["num_ego_networks"] == 133
        assert extras["overlap_fraction"] == 0.935
        assert extras["mean_clustering"] == 0.4901

    def test_magno_reference(self):
        assert MAGNO_REFERENCE.diameter == 19
        assert MAGNO_REFERENCE.average_shortest_path == 5.9
        assert "power-law" in (MAGNO_REFERENCE.degree_distribution or "")


class TestDataset:
    def test_summary_row(self, small_circles_dataset: Dataset):
        row = small_circles_dataset.summary_row()
        assert row["dataset"] == "small-circles"
        assert row["type"] == "directed"
        assert row["structure"] == "Circles"
        assert row["vertices"] == small_circles_dataset.graph.number_of_nodes()
        assert row["num_groups"] == len(small_circles_dataset.groups)

    def test_directed_flag(self, small_community_dataset: Dataset):
        assert not small_community_dataset.directed
        assert small_community_dataset.summary_row()["type"] == "undirected"

    def test_repr_mentions_structure(self, small_circles_dataset: Dataset):
        assert "circles" in repr(small_circles_dataset)
