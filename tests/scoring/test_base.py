"""GroupStats invariants — unit cases plus hypothesis properties."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyGroupError, NodeNotFound
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.scoring.base import compute_group_stats


class TestUndirectedStats:
    def test_triangle_subset(self, triangle_graph):
        stats = compute_group_stats(triangle_graph, [1, 2, 3])
        assert stats.n == 4
        assert stats.m == 4
        assert stats.n_C == 3
        assert stats.m_C == 3
        assert stats.c_C == 1

    def test_boundary_matches_edge_boundary(self, two_cliques_graph):
        members = [0, 1, 2, 3]
        stats = compute_group_stats(two_cliques_graph, members)
        assert stats.c_C == len(two_cliques_graph.edge_boundary(members))
        assert stats.m_C == 6

    def test_member_degree_arrays(self, triangle_graph):
        stats = compute_group_stats(triangle_graph, [3, 4])
        degrees = dict(zip(stats.members, stats.member_degrees))
        internal = dict(zip(stats.members, stats.member_internal_degrees))
        assert degrees == {3: 3, 4: 1}
        assert internal == {3: 1, 4: 1}
        assert stats.member_boundary_degrees.sum() == stats.c_C

    def test_internal_degree_sum_is_twice_m_C(self, two_cliques_graph):
        stats = compute_group_stats(two_cliques_graph, [0, 1, 2, 3, 4])
        assert stats.internal_degree_sum == 2 * stats.m_C

    def test_duplicated_members_deduplicated(self, triangle_graph):
        stats = compute_group_stats(triangle_graph, [1, 1, 2, 2])
        assert stats.n_C == 2

    def test_empty_group_raises(self, triangle_graph):
        with pytest.raises(EmptyGroupError):
            compute_group_stats(triangle_graph, [])

    def test_missing_member_raises(self, triangle_graph):
        with pytest.raises(NodeNotFound):
            compute_group_stats(triangle_graph, [1, 999])

    def test_whole_graph_has_no_boundary(self, triangle_graph):
        stats = compute_group_stats(triangle_graph, [1, 2, 3, 4])
        assert stats.c_C == 0
        assert stats.m_C == triangle_graph.number_of_edges()

    def test_possible_internal_edges(self, triangle_graph):
        stats = compute_group_stats(triangle_graph, [1, 2, 3])
        assert stats.possible_internal_edges == 3


class TestDirectedStats:
    def test_directed_counts(self, small_digraph):
        stats = compute_group_stats(small_digraph, ["a", "b"])
        assert stats.m_C == 2  # a->b and b->a
        assert stats.c_C == 1  # b->c
        assert stats.directed

    def test_boundary_counts_both_directions(self):
        graph = DiGraph([(1, 2), (3, 1), (1, 4), (5, 1)])
        stats = compute_group_stats(graph, [1, 2])
        assert stats.m_C == 1
        assert stats.c_C == 3

    def test_in_out_arrays(self, small_digraph):
        stats = compute_group_stats(small_digraph, ["b"])
        assert stats.member_in_degrees[0] == 1
        assert stats.member_out_degrees[0] == 2
        assert stats.member_degrees[0] == 3

    def test_internal_degree_sum_is_twice_m_C(self, small_digraph):
        stats = compute_group_stats(small_digraph, ["a", "b", "c"])
        assert stats.internal_degree_sum == 2 * stats.m_C

    def test_possible_internal_edges_directed(self, small_digraph):
        stats = compute_group_stats(small_digraph, ["a", "b", "c"])
        assert stats.possible_internal_edges == 6

    def test_with_median_degree(self, small_digraph):
        stats = compute_group_stats(small_digraph, ["a", "b"])
        enriched = stats.with_median_degree(2.0)
        assert enriched.graph_median_degree == 2.0
        assert enriched.m_C == stats.m_C


@st.composite
def graph_and_group(draw):
    """A random undirected graph plus a random non-empty vertex subset."""
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=40,
        )
    )
    graph = Graph()
    graph.add_nodes_from(range(n))
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v)
    members = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1,
            max_size=n,
            unique=True,
        )
    )
    return graph, members


class TestProperties:
    @given(graph_and_group())
    @settings(max_examples=60, deadline=None)
    def test_invariants_match_networkx(self, data):
        graph, members = data
        stats = compute_group_stats(graph, members)
        oracle = nx.Graph()
        oracle.add_nodes_from(graph.nodes)
        oracle.add_edges_from(graph.edges)
        member_set = set(members)
        expected_internal = oracle.subgraph(member_set).number_of_edges()
        expected_boundary = len(list(nx.edge_boundary(oracle, member_set)))
        assert stats.m_C == expected_internal
        assert stats.c_C == expected_boundary
        # Conservation: every endpoint of a member is internal or boundary.
        assert stats.degree_sum == 2 * stats.m_C + stats.c_C
        assert stats.internal_degree_sum == 2 * stats.m_C
        assert 0 <= stats.m_C <= stats.possible_internal_edges

    @given(graph_and_group())
    @settings(max_examples=30, deadline=None)
    def test_directed_conservation(self, data):
        graph, members = data
        directed = DiGraph()
        directed.add_nodes_from(graph.nodes)
        for u, v in graph.edges:
            directed.add_edge(u, v)
            directed.add_edge(v, u)
        stats = compute_group_stats(directed, members)
        undirected_stats = compute_group_stats(graph, members)
        # Full symmetrization doubles every count.
        assert stats.m_C == 2 * undirected_stats.m_C
        assert stats.c_C == 2 * undirected_stats.c_C
        assert stats.degree_sum == 2 * stats.m_C + stats.c_C
