"""Unit tests for the dataflow core itself — scopes, CFG reachability,
def-use chains and origin tagging — independent of any concrete rule."""

from __future__ import annotations

import ast
import textwrap

from repro.devtools.dataflow import (
    RNG,
    UNORDERED,
    ControlFlowGraph,
    DefUseChains,
    analyze_module,
    build_scope_tree,
    dotted_path,
    iter_scopes,
    root_name,
)


def parse(source: str) -> ast.Module:
    return ast.parse(textwrap.dedent(source))


def find_scope(root, name: str):
    for scope in iter_scopes(root):
        if scope.kind == "function" and getattr(scope.node, "name", "") == name:
            return scope
    raise AssertionError(f"no function scope named {name}")


def function_scope(tree: ast.Module, name: str):
    return find_scope(build_scope_tree(tree), name)


# -- scope resolution --------------------------------------------------------


def test_local_shadowing_resolves_to_inner_binding():
    tree = parse(
        """
        x = 1
        def f():
            x = 2
            return x
        """
    )
    scope = function_scope(tree, "f")
    symbol = scope.resolve("x")
    assert symbol is not None and symbol.scope is scope


def test_unshadowed_name_resolves_to_module_scope():
    tree = parse(
        """
        x = 1
        def f():
            return x
        """
    )
    scope = function_scope(tree, "f")
    symbol = scope.resolve("x")
    assert symbol is not None and symbol.scope.kind == "module"


def test_augmented_assignment_binds_locally():
    tree = parse(
        """
        def f():
            total = 0
            total += 1
            return total
        """
    )
    scope = function_scope(tree, "f")
    symbol = scope.resolve("total")
    assert symbol is not None and symbol.scope is scope
    assert len(symbol.bindings) == 2  # plain assign + augmented assign


def test_comprehension_target_does_not_leak_into_function_scope():
    tree = parse(
        """
        def f(items):
            squares = [item * item for item in items]
            return squares
        """
    )
    scope = function_scope(tree, "f")
    # ``item`` binds only inside the comprehension's own scope.
    assert "item" not in scope.symbols
    comp = next(s for s in scope.children if s.kind == "comprehension")
    assert "item" in comp.symbols


def test_global_declaration_redirects_binding_to_module_scope():
    tree = parse(
        """
        counter = 0
        def bump():
            global counter
            counter = counter + 1
        """
    )
    scope = function_scope(tree, "bump")
    assert "counter" not in scope.symbols
    symbol = scope.resolve("counter")
    assert symbol is not None and symbol.scope.kind == "module"
    # Both the module-level assign and the redirected one are recorded.
    assert len(symbol.bindings) == 2


def test_nonlocal_declaration_redirects_to_enclosing_function():
    tree = parse(
        """
        def outer():
            state = 0
            def inner():
                nonlocal state
                state = 1
            return inner
        """
    )
    root = build_scope_tree(tree)
    outer = find_scope(root, "outer")
    inner = find_scope(root, "inner")
    assert "state" not in inner.symbols
    symbol = inner.resolve("state")
    assert symbol is not None and symbol.scope is outer


def test_parameters_are_bound_as_params():
    tree = parse(
        """
        def f(a, *, b=1, **rest):
            return a + b
        """
    )
    scope = function_scope(tree, "f")
    for name in ("a", "b", "rest"):
        symbol = scope.symbols[name]
        assert symbol.is_param


# -- CFG reachability --------------------------------------------------------


def first_function(tree: ast.Module) -> ast.FunctionDef:
    return next(n for n in tree.body if isinstance(n, ast.FunctionDef))


def test_straight_line_reaches_forward_not_backward():
    fn = first_function(
        parse(
            """
            def f():
                a = 1
                b = 2
                return a + b
            """
        )
    )
    cfg = ControlFlowGraph.from_function(fn)
    s1, s2, s3 = fn.body
    assert cfg.reaches(s1, s3)
    assert not cfg.reaches(s3, s1)


def test_sibling_branches_do_not_reach_each_other():
    fn = first_function(
        parse(
            """
            def f(flag):
                if flag:
                    a = 1
                else:
                    b = 2
                return 0
            """
        )
    )
    cfg = ControlFlowGraph.from_function(fn)
    if_stmt = fn.body[0]
    then_stmt, else_stmt = if_stmt.body[0], if_stmt.orelse[0]
    assert not cfg.reaches(then_stmt, else_stmt)
    assert not cfg.reaches(else_stmt, then_stmt)
    assert cfg.reaches(then_stmt, fn.body[1])
    assert cfg.reaches(else_stmt, fn.body[1])


def test_loop_back_edge_reaches_earlier_statement():
    fn = first_function(
        parse(
            """
            def f(items):
                for item in items:
                    first = item
                    second = first
                return 0
            """
        )
    )
    cfg = ControlFlowGraph.from_function(fn)
    loop = fn.body[0]
    first_stmt, second_stmt = loop.body
    # Through the back-edge the later statement reaches the earlier one.
    assert cfg.reaches(second_stmt, first_stmt)


def test_killed_by_barrier_blocks_the_path():
    fn = first_function(
        parse(
            """
            def f():
                a = 1
                a = 2
                use(a)
            """
        )
    )
    cfg = ControlFlowGraph.from_function(fn)
    s1, s2, s3 = fn.body
    assert cfg.reaches(s1, s3)
    assert not cfg.reaches(s1, s3, killed_by={id(s2)})


def test_return_terminates_the_path():
    fn = first_function(
        parse(
            """
            def f(flag):
                if flag:
                    return 1
                tail = 2
                return tail
            """
        )
    )
    cfg = ControlFlowGraph.from_function(fn)
    early_return = fn.body[0].body[0]
    tail = fn.body[1]
    assert not cfg.reaches(early_return, tail)


# -- def-use chains ----------------------------------------------------------


def test_defuse_single_reaching_definition():
    fn = first_function(
        parse(
            """
            def f():
                value = 1
                return value
            """
        )
    )
    cfg = ControlFlowGraph.from_function(fn)
    chains = DefUseChains(cfg)
    ret = fn.body[1]
    use = next(
        n
        for n in ast.walk(ret)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    )
    assert chains.defs_reaching(use) == {fn.body[0]}


def test_defuse_merges_definitions_across_branches():
    fn = first_function(
        parse(
            """
            def f(flag):
                if flag:
                    value = 1
                else:
                    value = 2
                return value
            """
        )
    )
    cfg = ControlFlowGraph.from_function(fn)
    chains = DefUseChains(cfg)
    ret = fn.body[1]
    use = next(
        n
        for n in ast.walk(ret)
        if isinstance(n, ast.Name)
        and isinstance(n.ctx, ast.Load)
        and n.id == "value"
    )
    if_stmt = fn.body[0]
    assert chains.defs_reaching(use) == {if_stmt.body[0], if_stmt.orelse[0]}


def test_defuse_redefinition_kills_earlier_definition():
    fn = first_function(
        parse(
            """
            def f():
                value = 1
                value = 2
                return value
            """
        )
    )
    cfg = ControlFlowGraph.from_function(fn)
    chains = DefUseChains(cfg)
    use = next(
        n
        for n in ast.walk(fn.body[2])
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    )
    assert chains.defs_reaching(use) == {fn.body[1]}
    assert chains.uses_of(fn.body[0]) == []


# -- origin tagging ----------------------------------------------------------


def analysis_of(source: str, name: str = "f"):
    tree = parse(source)
    module = analyze_module(tree)
    fn = next(f for f in module.functions() if f.name == name)
    return module.analysis_for(fn), fn


def test_rng_constructor_tags_variable():
    fa, fn = analysis_of(
        """
        import random
        def f(seed):
            rng = random.Random(seed)
            use(rng)
        """
    )
    use_stmt = fn.body[1]
    rng_name = next(
        n
        for n in ast.walk(use_stmt)
        if isinstance(n, ast.Name) and n.id == "rng"
    )
    assert RNG in fa.tags(rng_name, use_stmt)


def test_set_comprehension_taints_and_stable_sorted_clears():
    fa, fn = analysis_of(
        """
        from repro.graph.convert import stable_sorted
        def f(items):
            pool = {item for item in items}
            ordered = stable_sorted(pool)
            use(pool, ordered)
        """
    )
    use_stmt = fn.body[2]
    names = {
        n.id: n
        for n in ast.walk(use_stmt)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }
    assert UNORDERED in fa.tags(names["pool"], use_stmt)
    assert UNORDERED not in fa.tags(names["ordered"], use_stmt)


def test_plain_sorted_preserves_the_unordered_taint():
    fa, fn = analysis_of(
        """
        def f(items):
            pool = set(items)
            ordered = sorted(pool)
            use(ordered)
        """
    )
    use_stmt = fn.body[2]
    name = next(
        n
        for n in ast.walk(use_stmt)
        if isinstance(n, ast.Name) and n.id == "ordered"
    )
    assert UNORDERED in fa.tags(name, use_stmt)


def test_analysis_is_cached_on_the_tree():
    tree = parse("x = 1\n")
    assert analyze_module(tree) is analyze_module(tree)


def test_dotted_path_helpers():
    expr = ast.parse("a.b.c", mode="eval").body
    assert dotted_path(expr) == "a.b.c"
    assert root_name(expr) == "a"
    call = ast.parse("f().b", mode="eval").body
    assert dotted_path(call) is None
    assert root_name(call) is None
