"""Runtime structural validation of the graph substrate.

The reproduction's numbers are only as trustworthy as the substrate under
them: a single asymmetric adjacency entry or a drifted edge count skews
conductance and Modularity for every group scored afterwards.
:func:`validate` checks the full set of structural invariants of
:class:`~repro.graph.Graph`, :class:`~repro.graph.DiGraph` and
:class:`~repro.graph.CSRGraph`:

* undirected adjacency is symmetric, directed ``_succ``/``_pred`` mirror
  each other, and both index the same node set;
* no self-loops (the social graph is simple);
* the incremental edge counter agrees with a recount;
* CSR ``indptr`` starts at 0, is monotone, and matches ``indices``;
  every CSR row is sorted, in-range, self-loop-free and duplicate-free;
  label/index mappings are mutually inverse;
* an :class:`~repro.engine.AnalysisContext` holds mutually consistent
  CSR orientations, degree arrays that match their ``indptr`` deltas,
  edge counts that match the adjacency totals, and a median equal to a
  recomputation from the degree array.

Setting ``REPRO_CHECK_INVARIANTS=1`` before importing :mod:`repro` wraps
every mutating substrate method with a post-condition check (see
:func:`install_invariant_checks`).  Bulk operations validate once at the
end, not per element, and graphs larger than
``REPRO_CHECK_INVARIANTS_LIMIT`` nodes+edges (default 20000) are skipped
to keep the mode usable on full experiment runs.
"""

from __future__ import annotations

import functools
import os
from typing import Any

import numpy as np

from repro.exceptions import InvariantViolation
from repro.graph import convert as _convert_module
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph

__all__ = [
    "validate",
    "validate_graph",
    "validate_digraph",
    "validate_csr",
    "validate_context",
    "validate_conversion",
    "install_invariant_checks",
    "uninstall_invariant_checks",
    "checks_installed",
    "checks_enabled_from_env",
]

_ENV_FLAG = "REPRO_CHECK_INVARIANTS"
_ENV_LIMIT = "REPRO_CHECK_INVARIANTS_LIMIT"
_DEFAULT_LIMIT = 20_000


def _fail(message: str) -> None:
    raise InvariantViolation(message)


def validate_graph(graph: Graph) -> None:
    """Check every structural invariant of an undirected :class:`Graph`."""
    adj = graph._adj  # noqa: SLF001 - validator inspects internals
    half_edges = 0
    for node, neighbors in adj.items():
        if node in neighbors:
            _fail(f"self-loop on node {node!r}")
        half_edges += len(neighbors)
        for other in neighbors:
            if other not in adj:
                _fail(
                    f"neighbour {other!r} of {node!r} is not a node "
                    "of the graph"
                )
            if node not in adj[other]:
                _fail(
                    f"asymmetric adjacency: {other!r} in adj[{node!r}] "
                    f"but {node!r} not in adj[{other!r}]"
                )
    if half_edges % 2 != 0:
        _fail(f"odd half-edge total {half_edges} in an undirected graph")
    recount = half_edges // 2
    if graph.number_of_edges() != recount:
        _fail(
            f"edge-count drift: counter says {graph.number_of_edges()}, "
            f"adjacency holds {recount}"
        )


def validate_digraph(graph: DiGraph) -> None:
    """Check every structural invariant of a :class:`DiGraph`."""
    succ = graph._succ  # noqa: SLF001 - validator inspects internals
    pred = graph._pred  # noqa: SLF001
    if succ.keys() != pred.keys():
        missing = set(succ.keys()) ^ set(pred.keys())
        _fail(f"node sets of _succ and _pred disagree on {sorted(map(repr, missing))}")
    out_edges = 0
    for node, successors in succ.items():
        if node in successors:
            _fail(f"self-loop on node {node!r}")
        out_edges += len(successors)
        for other in successors:
            if other not in pred:
                _fail(
                    f"successor {other!r} of {node!r} is not a node "
                    "of the graph"
                )
            if node not in pred[other]:
                _fail(
                    f"mirror violation: edge {node!r}->{other!r} in _succ "
                    "has no _pred entry"
                )
    in_edges = sum(len(predecessors) for predecessors in pred.values())
    if in_edges != out_edges:
        _fail(
            f"half-edge accounting: {out_edges} successor entries vs "
            f"{in_edges} predecessor entries"
        )
    if graph.number_of_edges() != out_edges:
        _fail(
            f"edge-count drift: counter says {graph.number_of_edges()}, "
            f"adjacency holds {out_edges}"
        )


def validate_csr(csr: CSRGraph) -> None:
    """Check the structural invariants of a :class:`CSRGraph` snapshot."""
    indptr, indices = csr.indptr, csr.indices
    n = csr.num_vertices
    if len(indptr) != n + 1:
        _fail(f"indptr has {len(indptr)} entries for {n} vertices")
    if n and indptr[0] != 0:
        _fail(f"indptr[0] == {indptr[0]}, expected 0")
    for i in range(len(indptr) - 1):
        if indptr[i + 1] < indptr[i]:
            _fail(f"indptr not monotone at position {i}")
    if len(indptr) and indptr[-1] != len(indices):
        _fail(
            f"indptr[-1] == {indptr[-1]} but indices has {len(indices)} entries"
        )
    for vertex in range(n):
        row = indices[indptr[vertex] : indptr[vertex + 1]]
        previous = -1
        for neighbor in row:
            if not 0 <= neighbor < n:
                _fail(f"row {vertex} references out-of-range vertex {neighbor}")
            if neighbor == vertex:
                _fail(f"self-loop in CSR row {vertex}")
            if neighbor <= previous:
                _fail(f"row {vertex} is not strictly sorted")
            previous = neighbor
    if len(csr.nodes) != len(csr.index_of):
        _fail(
            f"{len(csr.nodes)} labels but {len(csr.index_of)} index entries"
        )
    for i, label in enumerate(csr.nodes):
        if csr.index_of.get(label) != i:
            _fail(f"label {label!r} maps to {csr.index_of.get(label)}, not {i}")


def validate_context(context: Any) -> None:
    """Check the consistency invariants of an
    :class:`~repro.engine.AnalysisContext`.

    Beyond per-CSR validity this pins the *cross-structure* contracts the
    engine kernels rely on: all orientations index the same vertex set in
    the same order, cached degree arrays equal their ``indptr`` deltas,
    the snapshotted edge count matches the adjacency totals, and the
    cached median is a recomputation from the degree array.
    """
    csr = context.csr
    validate_csr(csr)
    if csr.orientation != "union":
        _fail(f"context.csr has orientation {csr.orientation!r}, not 'union'")
    if context.num_vertices != csr.num_vertices:
        _fail(
            f"context says {context.num_vertices} vertices, "
            f"CSR holds {csr.num_vertices}"
        )
    if context.is_directed:
        if context.csr_out is None or context.csr_in is None:
            _fail("directed context lacks an out/in CSR orientation")
        for oriented, expected in (
            (context.csr_out, "out"),
            (context.csr_in, "in"),
        ):
            validate_csr(oriented)
            if oriented.orientation != expected:
                _fail(
                    f"context.csr_{expected} has orientation "
                    f"{oriented.orientation!r}"
                )
            if oriented.nodes != csr.nodes:
                _fail(
                    f"vertex ordering of the {expected!r} orientation "
                    "disagrees with the union CSR"
                )
        out_total = context.csr_out.num_half_edges
        in_total = context.csr_in.num_half_edges
        if out_total != in_total:
            _fail(
                f"out adjacency holds {out_total} edges but in adjacency "
                f"holds {in_total}"
            )
        if context.num_edges != out_total:
            _fail(
                f"edge-count drift: context snapshotted {context.num_edges} "
                f"edges, out-CSR holds {out_total}"
            )
        expected_degrees = (
            context.csr_out.degree_array() + context.csr_in.degree_array()
        )
    else:
        if context.csr_out is not None or context.csr_in is not None:
            _fail("undirected context carries directed CSR orientations")
        if csr.num_half_edges != 2 * context.num_edges:
            _fail(
                f"edge-count drift: context snapshotted {context.num_edges} "
                f"edges, union CSR holds {csr.num_half_edges} half-edges"
            )
        expected_degrees = csr.degree_array()
    degrees = context.degree_array
    if not np.array_equal(degrees, expected_degrees):
        _fail("context degree array disagrees with its CSR indptr deltas")
    if not np.array_equal(csr.degree_array(), np.diff(csr.indptr)):
        _fail("cached CSR degree array disagrees with indptr deltas")
    median = float(np.median(degrees))
    if context.median_degree != median:
        _fail(
            f"cached median degree {context.median_degree} != "
            f"recomputed {median}"
        )


def validate_conversion(source: Any, derived: Any) -> None:
    """Check node-set agreement between a graph and a converted form.

    Applies after :func:`repro.graph.convert.to_undirected` /
    :func:`~repro.graph.convert.to_directed` and CSR freezing: every
    conversion in this library preserves the vertex set exactly.
    """
    source_nodes = set(source.nodes)
    derived_nodes = set(derived.nodes)
    if source_nodes != derived_nodes:
        missing = source_nodes - derived_nodes
        extra = derived_nodes - source_nodes
        _fail(
            f"conversion changed the node set: {len(missing)} dropped, "
            f"{len(extra)} invented"
        )


def validate(obj: Any) -> None:
    """Validate any supported substrate object; raise on corruption.

    Accepts :class:`Graph`, :class:`DiGraph`, :class:`CSRGraph` and
    :class:`~repro.engine.AnalysisContext`.
    """
    # Imported here: repro.engine depends on repro.graph, and this module
    # must stay importable from graph-layer code without a cycle.
    from repro.engine.context import AnalysisContext

    if isinstance(obj, Graph):
        validate_graph(obj)
    elif isinstance(obj, DiGraph):
        validate_digraph(obj)
    elif isinstance(obj, CSRGraph):
        validate_csr(obj)
    elif isinstance(obj, AnalysisContext):
        validate_context(obj)
    else:
        raise TypeError(f"cannot validate object of type {type(obj).__name__}")


# -- opt-in post-condition mode ---------------------------------------------

#: Mutating methods wrapped by :func:`install_invariant_checks`.
_MUTATORS = (
    "add_node",
    "add_nodes_from",
    "add_edge",
    "add_edges_from",
    "remove_node",
    "remove_edge",
)

# Saved originals: {(cls, method_name): function}.  Non-empty iff installed.
_originals: dict[tuple[type, str], Any] = {}

# Re-entrancy depth: bulk methods call unit methods internally; only the
# outermost wrapped call validates, so add_edges_from costs one check.
_depth = 0


def _size(graph: Graph | DiGraph) -> int:
    return graph.number_of_nodes() + graph.number_of_edges()


def _wrap_mutator(cls: type, name: str, limit: int) -> None:
    original = getattr(cls, name)
    _originals[(cls, name)] = original

    @functools.wraps(original)
    def checked(self, *args, **kwargs):
        global _depth
        _depth += 1
        try:
            result = original(self, *args, **kwargs)
        finally:
            _depth -= 1
        if _depth == 0 and _size(self) <= limit:
            validate(self)
        return result

    setattr(cls, name, checked)


def install_invariant_checks(limit: int | None = None) -> None:
    """Wrap substrate mutators and conversions with post-condition checks.

    Idempotent.  ``limit`` bounds the graph size (nodes + edges) above
    which validation is skipped; default is ``REPRO_CHECK_INVARIANTS_LIMIT``
    or 20000.  Activated automatically at import time when
    ``REPRO_CHECK_INVARIANTS=1`` is set (see ``repro/__init__.py``).
    """
    if _originals:
        return
    if limit is None:
        limit = int(os.environ.get(_ENV_LIMIT, _DEFAULT_LIMIT))
    for cls in (Graph, DiGraph):
        for name in _MUTATORS:
            _wrap_mutator(cls, name, limit)
    # The conversion functions call this hook themselves, so the check
    # covers every call site regardless of how the function was imported.
    hook_name = "_conversion_check"
    _originals[(_convert_module, hook_name)] = getattr(  # type: ignore[index]
        _convert_module, hook_name
    )

    def checked_conversion(source, result) -> None:
        if _size(source) <= limit:
            validate_conversion(source, result)
            validate(result)

    setattr(_convert_module, hook_name, checked_conversion)


def uninstall_invariant_checks() -> None:
    """Restore the original unwrapped substrate methods."""
    for (owner, name), original in _originals.items():
        setattr(owner, name, original)
    _originals.clear()


def checks_installed() -> bool:
    """Whether the post-condition wrappers are currently active."""
    return bool(_originals)


def checks_enabled_from_env() -> bool:
    """Whether ``REPRO_CHECK_INVARIANTS`` requests the opt-in mode."""
    return os.environ.get(_ENV_FLAG, "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )
