"""Interprocedural lint rules: parallel safety (REP40x), cache
soundness (REP50x) and columnar-scoring discipline (REP607).

These rules consume the whole-program call graph
(:mod:`repro.devtools.callgraph`) and the bottom-up effect summaries
(:mod:`repro.devtools.summaries`); the driver runs them once per lint
batch, in the parent process, after the per-file rules.

REP401–REP405 guard the shared-memory parallel engine and the frozen
substrate: worker-reachable code must treat frozen context state as
read-only (REP401), never receive live RNG objects — even through helper
returns REP105's local view cannot see (REP402), only dispatch picklable
top-level callables (REP403), merge shard results in submission order,
not completion order (REP404), and never reopen a finalized on-disk CSR
store writable or force a frozen buffer's writeable flag back on
(REP405).

REP501–REP503 guard the on-disk result cache: every value that influences
a cached payload must be represented in the cache key (REP501), cache
files must be written through the atomic scratch-file + ``os.replace``
helper (REP502), and scoring-function instance state must be fixed at
``__init__`` time so ``function_tokens`` snapshots are faithful (REP503).

REP607 guards the columnar scoring pipeline: engine and service hot
paths must score batches through the shared vectorized stage
(:func:`repro.scoring.columnar.score_matrix`), never through a nested
per-(group, function) scalar ``__call__`` loop.

Like the flow rules, everything here is biased toward zero false
positives: a fact must be *provable* from the summaries before a rule
fires, and anything the intraprocedural REP105 already reports is not
re-reported by REP402.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools._base import (
    ProgramRule,
    Violation,
    _CONTAINER_MUTATORS,
)
from repro.devtools.callgraph import (
    FunctionInfo,
    Program,
    _iter_own_statements,
    _stmt_expressions,
)
from repro.devtools.dataflow import RNG, dotted_path, root_name
from repro.devtools.rules_flow import RngAcrossProcessBoundary, _looks_like_rng
from repro.devtools.summaries import CACHE_PATH, summarize

__all__ = [
    "WorkerMutatesFrozenState",
    "RngReachesProcessBoundary",
    "UnpicklableWorkerCallable",
    "CompletionOrderMerge",
    "WritableFrozenStore",
    "CacheKeyMissingInput",
    "NonAtomicCacheWrite",
    "ScoringStateTokenDrift",
    "ScalarScoringLoop",
    "INTERPROC_RULES",
]

#: Parameter names that are execution knobs, not cached-value inputs.
_CACHE_KEY_ALLOW = frozenset(
    {"self", "cls", "jobs", "executor", "cache", "store", "pool"}
)

#: Functions recognized as the sanctioned atomic cache-write helper.
_ATOMIC_WRITE_HELPERS = frozenset({"_store"})

#: numpy savers whose first argument is the destination file.
_NUMPY_SAVERS = frozenset({"save", "savez", "savez_compressed"})

#: pathlib write methods.
_PATH_WRITERS = frozenset({"write_text", "write_bytes"})


def _program_violation(
    rule: ProgramRule,
    info: FunctionInfo,
    lineno: int,
    col: int,
    message: str,
) -> Violation:
    return Violation(
        rule_id=rule.id,
        message=message,
        path=info.module.path,
        line=lineno,
        col=col,
    )


class WorkerMutatesFrozenState(ProgramRule):
    """Frozen context state is mutated somewhere a worker process runs.

    The shared-memory parallel engine exports one frozen CSR substrate and
    re-wraps it in every worker; a write into those buffers — anywhere in
    the call tree below a worker entry point — races against every other
    shard and silently corrupts results on platforms where the memory is
    genuinely shared.  The call graph finds every function reachable from
    a process dispatch (``pool.submit``/``map``, ``initializer=``,
    ``target=``) and the summaries flag in-place writes (subscript stores,
    ``fill``/``sort``/``put``, graph and container mutators) through any
    FROZEN-tagged value or a view derived from one.
    """

    id = "REP401"
    summary = "frozen context state mutated in worker-reachable code"
    example_bad = (
        "def _shard(id_lists):\n"
        "    context = _worker_context()\n"
        "    context.csr.indices[0] = -1  # shared frozen buffer\n"
        "pool.submit(_shard, id_lists)\n"
    )
    example_good = (
        "def _shard(id_lists):\n"
        "    context = _worker_context()\n"
        "    order = context.csr.indices.copy()  # private copy\n"
        "    order[0] = -1\n"
        "pool.submit(_shard, id_lists)\n"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        summaries = summarize(program)
        origin = program.reachable(program.worker_entries())
        for key in sorted(origin):
            info = program.functions[key]
            entry = program.functions[origin[key]]
            for site in summaries.summary(key).frozen_mutation_sites:
                yield _program_violation(
                    self,
                    info,
                    site.lineno,
                    site.col,
                    f"`{site.target}` is frozen context state but is "
                    f"mutated ({site.kind}) in `{info.qualname}`, which "
                    f"runs inside worker processes (reachable from "
                    f"worker entry `{entry.qualname}`); copy before "
                    "writing — frozen buffers are shared across shards",
                )


class RngReachesProcessBoundary(ProgramRule):
    """An RNG reaches an executor boundary through interprocedural flow.

    REP105 catches ``pool.submit(fn, rng)`` when the RNG is visible inside
    the dispatching function; this rule generalizes it through calls: a
    helper's *return value* carrying the RNG tag (per its summary) that is
    shipped to a worker is the same unreplayable-state hazard, one frame
    removed.  Payloads REP105 already reports are skipped, so each hazard
    is reported exactly once.
    """

    id = "REP402"
    summary = "RNG transitively shipped across an executor boundary"
    example_bad = (
        "def make_stream(seed):\n"
        "    return random.Random(seed)\n"
        "state = make_stream(seed)  # summary: returns RNG\n"
        "pool.submit(run_shard, state)\n"
    )
    example_good = (
        "seeds = spawn_child_seeds(seed, shards)\n"
        "pool.submit(run_shard, seeds[i])  # rebuild RNG in worker\n"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        summaries = summarize(program)
        for site in program.dispatch_sites:
            info = program.functions[site.caller]
            evaluator = summaries.evaluator(site.caller)
            fa = info.module.analysis.analysis_for(info.node)
            payloads: list[ast.expr] = []
            if site.kind == "executor":
                payloads.extend(site.call.args[1:])
                payloads.extend(kw.value for kw in site.call.keywords)
            else:
                payloads.extend(
                    kw.value
                    for kw in site.call.keywords
                    if kw.arg in ("initargs", "args")
                )
            for payload in payloads:
                pending = [payload]
                while pending:
                    candidate = pending.pop()
                    if isinstance(candidate, ast.Starred):
                        pending.append(candidate.value)
                        continue
                    if isinstance(candidate, (ast.Tuple, ast.List)):
                        pending.extend(candidate.elts)
                        continue
                    # Already REP105's finding: skip to avoid duplicates.
                    if RngAcrossProcessBoundary._rng_payload(
                        candidate, fa, site.stmt
                    ) is not None:
                        continue
                    if _looks_like_rng(candidate, fa, site.stmt):
                        continue
                    if RNG in evaluator.tags(candidate, site.stmt):
                        label = dotted_path(candidate) or "<rng>"
                        yield _program_violation(
                            self,
                            info,
                            site.call.lineno,
                            site.call.col_offset,
                            f"`{label}` carries RNG state (via function "
                            "summaries) and crosses a process boundary "
                            "here; ship integer child seeds "
                            "(sampling.seeds.spawn_child_seeds) and "
                            "rebuild the RNG inside the worker",
                        )
                        break


class UnpicklableWorkerCallable(ProgramRule):
    """A lambda or closure is dispatched as a worker task.

    ``spawn`` (the default on macOS/Windows, and the only portable
    contract) pickles the dispatched callable; lambdas and functions
    defined inside another function don't pickle, so the code works under
    ``fork`` on Linux and crashes everywhere else — the classic
    silently-unportable shard task.  Dispatch module-level functions only.
    """

    id = "REP403"
    summary = "unpicklable lambda/closure dispatched as a worker task"
    example_bad = (
        "def run(pool, shards):\n"
        "    task = lambda s: score(s)  # closure: fork-only\n"
        "    return [pool.submit(task, s) for s in shards]\n"
    )
    example_good = (
        "def _score_one(s):  # module level: picklable under spawn\n"
        "    return score(s)\n"
        "def run(pool, shards):\n"
        "    return [pool.submit(_score_one, s) for s in shards]\n"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        summaries = summarize(program)
        for site in program.dispatch_sites:
            info = program.functions[site.caller]
            evaluator = summaries.evaluator(site.caller)
            if site.kind == "executor":
                callables = site.call.args[:1]
            else:
                callables = [
                    kw.value
                    for kw in site.call.keywords
                    if kw.arg in ("initializer", "target")
                ]
            lambda_names = {
                stmt.targets[0].id
                for stmt in _iter_own_statements(list(info.node.body))
                if isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Lambda)
            }
            for expr in callables:
                reason: str | None = None
                if isinstance(expr, ast.Lambda):
                    reason = "a lambda"
                elif isinstance(expr, ast.Name) and expr.id in lambda_names:
                    reason = f"`{expr.id}`, bound to a lambda,"
                else:
                    for key in evaluator.call_targets(expr):
                        target = program.functions.get(key)
                        if target is not None and target.nested:
                            reason = (
                                f"`{target.qualname}`, a function defined "
                                "inside another function,"
                            )
                            break
                if reason is not None:
                    yield _program_violation(
                        self,
                        info,
                        site.call.lineno,
                        site.call.col_offset,
                        f"{reason} is dispatched as a worker task; "
                        "closures don't pickle under the spawn start "
                        "method — move the task to module level",
                    )


class CompletionOrderMerge(ProgramRule):
    """Shard results are accumulated in completion order.

    ``as_completed(...)`` and ``imap_unordered(...)`` yield results in
    whatever order workers finish — scheduling order, not submission
    order.  Appending a shard *result* (or ``+=``-reducing one: float
    addition is not associative) inside such a loop makes the merged
    value depend on machine load.  Index the results by submission
    position (``results[i] = ...``) or iterate the futures list in
    submission order instead.

    Order-insensitive accumulations are exempt, keeping the rule
    provable-only: bookkeeping that never touches a result (collecting
    the finished futures themselves under ``as_completed``, counting
    completions for progress) and accumulators that are re-sorted
    (``acc.sort()`` / ``sorted(acc)``) before use.
    """

    id = "REP404"
    summary = "non-deterministic completion-order merge of shard results"
    example_bad = (
        "for future in as_completed(futures):\n"
        "    rows.append(future.result())  # completion order\n"
    )
    example_good = (
        "for future in futures:  # submission order\n"
        "    rows.append(future.result())\n"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        for key in sorted(program.functions):
            info = program.functions[key]
            statements = list(_iter_own_statements(list(info.node.body)))
            for stmt in statements:
                if not isinstance(stmt, (ast.For, ast.AsyncFor)):
                    continue
                ordering = self._completion_ordered(stmt.iter)
                if ordering is None:
                    continue
                loop_names = self._target_names(stmt.target)
                for inner in _iter_own_statements(stmt.body):
                    found = self._accumulation(inner, loop_names, ordering)
                    if found is None:
                        continue
                    offender, accumulator = found
                    if accumulator is not None and self._resorted(
                        statements, accumulator
                    ):
                        continue
                    yield _program_violation(
                        self,
                        info,
                        offender.lineno,
                        offender.col_offset,
                        "shard results are accumulated in completion "
                        "order (the loop iterates "
                        f"`{dotted_path(stmt.iter.func) or 'as_completed'}"
                        "`); order depends on scheduling — index results "
                        "by submission position instead",
                    )
                    break

    @staticmethod
    def _completion_ordered(iterable: ast.expr) -> str | None:
        if not isinstance(iterable, ast.Call):
            return None
        func = iterable.func
        if isinstance(func, ast.Name) and func.id == "as_completed":
            return "as_completed"
        if isinstance(func, ast.Attribute) and func.attr in (
            "as_completed",
            "imap_unordered",
        ):
            return func.attr
        return None

    @staticmethod
    def _target_names(target: ast.expr) -> frozenset[str]:
        return frozenset(
            sub.id for sub in ast.walk(target) if isinstance(sub, ast.Name)
        )

    @classmethod
    def _merges_result(
        cls, expr: ast.expr, loop_names: frozenset[str], ordering: str
    ) -> bool:
        """The accumulated value provably carries a shard result.

        Under ``as_completed`` the loop variable is a *future*: only
        ``future.result()`` extractions count (collecting the futures
        themselves is order-insensitive bookkeeping).  Under
        ``imap_unordered`` the loop variable *is* the result.
        """
        if ordering == "as_completed":
            for sub in ast.walk(expr):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "result"
                    and root_name(sub.func.value) in loop_names
                ):
                    return True
            return False
        return any(
            isinstance(sub, ast.Name) and sub.id in loop_names
            for sub in ast.walk(expr)
        )

    @classmethod
    def _accumulation(
        cls, stmt: ast.stmt, loop_names: frozenset[str], ordering: str
    ) -> tuple[ast.AST, str | None] | None:
        """An order-sensitive accumulation: ``(offending node, name of
        the accumulator)`` — or ``None`` for bookkeeping."""
        if isinstance(stmt, ast.AugAssign):
            if cls._merges_result(stmt.value, loop_names, ordering):
                return stmt, root_name(stmt.target)
            return None
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute) and call.func.attr in (
                "append",
                "extend",
            ):
                payload = [*call.args, *(kw.value for kw in call.keywords)]
                if any(
                    cls._merges_result(arg, loop_names, ordering)
                    for arg in payload
                ):
                    return call, root_name(call.func.value)
        return None

    @staticmethod
    def _resorted(statements: list[ast.stmt], accumulator: str) -> bool:
        """The accumulator is re-sorted somewhere in the function, so
        completion order cannot leak into the final value."""
        for stmt in statements:
            for expr in _stmt_expressions(stmt):
                for sub in ast.walk(expr):
                    if not isinstance(sub, ast.Call):
                        continue
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr == "sort"
                        and root_name(func.value) == accumulator
                    ):
                        return True
                    if (
                        isinstance(func, ast.Name)
                        and func.id == "sorted"
                        and sub.args
                        and root_name(sub.args[0]) == accumulator
                    ):
                        return True
        return False


class WritableFrozenStore(ProgramRule):
    """A frozen on-disk CSR buffer is opened writable or force-unfrozen.

    The out-of-core substrate's correctness rests on store files being
    immutable once finalized: fingerprints are computed from the bytes,
    cache keys from the fingerprints, and every attached process shares
    the same page-cache view (``docs/SCALING.md``).  A ``np.memmap``
    opened in a writable mode (``r+``/``w+``, or numpy's *default* when
    ``mode=`` is omitted) — or a ``np.load(..., mmap_mode="r+")`` — can
    silently rewrite a finalized store under every other reader, and
    flipping ``array.flags.writeable`` back to ``True`` re-arms exactly
    the aliasing that frozen-array validation exists to reject.  The
    sanctioned mutation path is :class:`repro.engine.delta.ContextDelta`
    — ``apply`` builds **new** arrays and never reopens store files —
    so its methods are the only allowlisted site.
    """

    id = "REP405"
    summary = "frozen store memmap opened writable or flags force-unfrozen"
    example_bad = (
        "data = np.memmap(store / 'union.indices.bin', dtype=np.int64)\n"
        "data[0] = -1  # default mode is 'r+': rewrites the store\n"
    )
    example_good = (
        "data = np.memmap(\n"
        "    store / 'union.indices.bin', dtype=np.int64, mode='r'\n"
        ")\n"
    )

    #: Classes whose methods may produce patched substrate arrays.
    _ALLOWED_CLASSES = frozenset({"ContextDelta"})

    #: Read-only / copy-on-write memmap modes (never write to the file).
    _SAFE_MODES = frozenset({"r", "c"})

    def check_program(self, program: Program) -> Iterator[Violation]:
        for key in sorted(program.functions):
            info = program.functions[key]
            if info.class_name in self._ALLOWED_CLASSES:
                continue
            for stmt in _iter_own_statements(list(info.node.body)):
                yield from self._unfreeze_assignment(info, stmt)
                for expr in _stmt_expressions(stmt):
                    for sub in ast.walk(expr):
                        if not isinstance(sub, ast.Call):
                            continue
                        found = self._writable_open(sub)
                        if found is None:
                            continue
                        yield _program_violation(
                            self,
                            info,
                            sub.lineno,
                            sub.col_offset,
                            f"{found} opens a file-backed array writable; "
                            "frozen CSR stores are immutable once "
                            "finalized — open with mode='r' (or 'c') and "
                            "route mutations through ContextDelta.apply",
                        )

    def _unfreeze_assignment(
        self, info: FunctionInfo, stmt: ast.stmt
    ) -> Iterator[Violation]:
        if not isinstance(stmt, ast.Assign):
            return
        if not (
            isinstance(stmt.value, ast.Constant) and stmt.value.value is True
        ):
            return
        for target in stmt.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "flags"
            ):
                yield _program_violation(
                    self,
                    info,
                    stmt.lineno,
                    stmt.col_offset,
                    f"`{dotted_path(target) or 'flags.writeable'}` is "
                    "forced back to True; frozen buffers stay read-only "
                    "— copy the array or go through ContextDelta.apply",
                )

    @classmethod
    def _writable_open(cls, call: ast.Call) -> str | None:
        """Name the writable file-backed-array open, or ``None``."""
        func = call.func
        attr = func.attr if isinstance(func, ast.Attribute) else None
        name = func.id if isinstance(func, ast.Name) else None
        target = attr or name
        if target == "memmap":
            mode = cls._keyword_value(call, "mode")
            if mode is _MISSING:
                return "np.memmap(...) without mode= (default 'r+')"
            if isinstance(mode, str) and mode not in cls._SAFE_MODES:
                return f"np.memmap(..., mode={mode!r})"
            return None
        if target == "load":
            mode = cls._keyword_value(call, "mmap_mode")
            if isinstance(mode, str) and mode not in cls._SAFE_MODES:
                return f"np.load(..., mmap_mode={mode!r})"
        return None

    @staticmethod
    def _keyword_value(call: ast.Call, keyword: str) -> object:
        for kw in call.keywords:
            if kw.arg == keyword:
                if isinstance(kw.value, ast.Constant):
                    return kw.value.value
                return None  # non-constant: not provable, stay silent
        return _MISSING


#: Sentinel distinguishing "keyword omitted" from "non-constant value".
_MISSING = object()


class CacheKeyMissingInput(ProgramRule):
    """A value influences a cached payload but not the cache key.

    The on-disk :class:`ResultCache` is content-addressed: a payload may
    only be served back when *every* input that shaped it is folded into
    the key digest.  This rule taints each function parameter, propagates
    name-level influence through assignments and container mutations, and
    compares the parameters reaching the ``store_*`` payload against
    those reaching the paired ``*_key(...)`` derivation.  A parameter in
    the payload but not the key means two different computations can
    collide on one cache entry — the cache serves wrong results.
    Execution knobs (``jobs``, ``executor``, ``cache``) are exempt:
    they change how, not what, is computed.
    """

    id = "REP501"
    summary = "cached payload influenced by a value absent from the key"
    example_bad = (
        "key = store.matched_sets_key(ctx, seed=seed, sizes=sizes)\n"
        "ids = SAMPLER_IDS[sampler](ctx, sizes, rng)\n"
        "store.store_id_sets(key, ids)  # `sampler` not in the key\n"
    )
    example_good = (
        "key = store.matched_sets_key(ctx, sampler=sampler,\n"
        "                             seed=seed, sizes=sizes)\n"
        "store.store_id_sets(key, ids)\n"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        for fn_key in sorted(program.functions):
            info = program.functions[fn_key]
            pairs = self._key_store_pairs(info)
            if not pairs:
                continue
            influence = self._influence_map(info)

            def reaching(exprs: list[ast.expr]) -> frozenset[str]:
                out: set[str] = set()
                for expr in exprs:
                    for sub in ast.walk(expr):
                        if isinstance(sub, ast.Name) and isinstance(
                            sub.ctx, ast.Load
                        ):
                            out |= influence.get(sub.id, frozenset())
                return frozenset(out)

            for key_call, store_call in pairs:
                key_inputs = reaching(
                    list(key_call.args)
                    + [kw.value for kw in key_call.keywords]
                )
                payload_inputs = reaching(
                    list(store_call.args[1:])
                    + [kw.value for kw in store_call.keywords]
                )
                missing = sorted(
                    payload_inputs - key_inputs - _CACHE_KEY_ALLOW
                )
                if missing:
                    names = ", ".join(f"`{name}`" for name in missing)
                    yield _program_violation(
                        self,
                        info,
                        store_call.lineno,
                        store_call.col_offset,
                        f"cached payload depends on {names} but the "
                        "cache key derivation does not; two runs with "
                        "different values would collide on one cache "
                        "entry — fold the value into the key tokens",
                    )

    @staticmethod
    def _key_store_pairs(
        info: FunctionInfo,
    ) -> list[tuple[ast.Call, ast.Call]]:
        key_calls: dict[str, ast.Call] = {}
        statements = list(_iter_own_statements(list(info.node.body)))
        for stmt in statements:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr.endswith("_key")
            ):
                key_calls[stmt.targets[0].id] = stmt.value
        if not key_calls:
            return []
        pairs: list[tuple[ast.Call, ast.Call]] = []
        for stmt in statements:
            for expr in _stmt_expressions(stmt):
                for sub in ast.walk(expr):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr.startswith("store_")
                        and sub.args
                        and isinstance(sub.args[0], ast.Name)
                        and sub.args[0].id in key_calls
                    ):
                        pairs.append((key_calls[sub.args[0].id], sub))
        return pairs

    @staticmethod
    def _influence_map(info: FunctionInfo) -> dict[str, frozenset[str]]:
        """Flow-insensitive name-level parameter influence (fixpoint).

        Control dependencies are deliberately excluded (a parameter that
        only *gates* a computation is not folded in), keeping the rule
        zero-false-positive at the cost of missing control-only leaks.
        """
        influence: dict[str, frozenset[str]] = {
            name: frozenset({name}) for name in info.param_names
        }
        statements = list(_iter_own_statements(list(info.node.body)))

        def value_inputs(expr: ast.expr) -> frozenset[str]:
            out: set[str] = set()
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, ast.Load
                ):
                    out |= influence.get(sub.id, frozenset())
            return frozenset(out)

        changed = True
        rounds = 0
        while changed and rounds < 8:
            changed = False
            rounds += 1

            def absorb(name: str, values: frozenset[str]) -> None:
                nonlocal changed
                merged = influence.get(name, frozenset()) | values
                if merged != influence.get(name):
                    influence[name] = merged
                    changed = True

            def absorb_target(
                target: ast.expr, values: frozenset[str]
            ) -> None:
                if isinstance(target, ast.Name):
                    absorb(target.id, values)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        absorb_target(element, values)
                elif isinstance(target, ast.Starred):
                    absorb_target(target.value, values)
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = root_name(
                        target.value
                        if isinstance(target, ast.Subscript)
                        else target
                    )
                    if root is not None:
                        absorb(root, values)

            for stmt in statements:
                if isinstance(stmt, ast.Assign):
                    values = value_inputs(stmt.value)
                    for target in stmt.targets:
                        absorb_target(target, values)
                elif (
                    isinstance(stmt, (ast.AnnAssign, ast.AugAssign))
                    and stmt.value is not None
                ):
                    absorb_target(stmt.target, value_inputs(stmt.value))
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    absorb_target(stmt.target, value_inputs(stmt.iter))
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        if item.optional_vars is not None:
                            absorb_target(
                                item.optional_vars,
                                value_inputs(item.context_expr),
                            )
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.NamedExpr):
                        absorb_target(sub.target, value_inputs(sub.value))
                    elif (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _CONTAINER_MUTATORS
                    ):
                        root = root_name(sub.func.value)
                        if root is not None:
                            payload = frozenset().union(
                                *(
                                    value_inputs(arg)
                                    for arg in (
                                        *sub.args,
                                        *(
                                            kw.value
                                            for kw in sub.keywords
                                        ),
                                    )
                                ),
                                frozenset(),
                            )
                            absorb(root, payload)
        return influence


class NonAtomicCacheWrite(ProgramRule):
    """A cache file is written without the atomic-replace helper.

    Concurrent lints/runs share one cache directory; a direct
    ``open(path, "wb")`` or ``np.savez(path, ...)`` on a cache path leaves
    a torn half-written file visible to concurrent readers (and a corrupt
    entry after a crash).  All cache writes must go through the scratch
    file + ``os.replace`` helper (``ResultCache._store``), whose rename is
    atomic on POSIX.  Paths are recognized interprocedurally: anything
    derived from a cache's ``_path(...)`` mapping carries the
    ``cache_path`` tag through returns, ``with_name`` and assignments.
    """

    id = "REP502"
    summary = "cache file written without the atomic os.replace helper"
    example_bad = (
        "path = self._path(key)\n"
        "np.savez(path, **arrays)  # torn file visible to readers\n"
    )
    example_good = (
        "self._store(key, arrays)  # scratch file + os.replace\n"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        summaries = summarize(program)
        for key in sorted(program.functions):
            info = program.functions[key]
            if info.name in _ATOMIC_WRITE_HELPERS:
                continue
            evaluator = summaries.evaluator(key)
            for stmt in evaluator.cfg.statement_order():
                for expr in _stmt_expressions(stmt):
                    for sub in ast.walk(expr):
                        if not isinstance(sub, ast.Call):
                            continue
                        sink = self._write_sink(sub, evaluator, stmt)
                        if sink is None:
                            continue
                        yield _program_violation(
                            self,
                            info,
                            sub.lineno,
                            sub.col_offset,
                            f"cache file written via {sink} outside the "
                            "atomic-write helper; use the scratch-file + "
                            "os.replace path (ResultCache._store) so "
                            "concurrent readers never see a torn entry",
                        )

    @staticmethod
    def _write_sink(call: ast.Call, evaluator, stmt: ast.stmt) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            if len(call.args) >= 2 and isinstance(
                call.args[1], ast.Constant
            ):
                mode = call.args[1].value
                if isinstance(mode, str) and any(
                    flag in mode for flag in ("w", "a", "x", "+")
                ):
                    if CACHE_PATH in evaluator.tags(call.args[0], stmt):
                        return f"open(..., {mode!r})"
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in _NUMPY_SAVERS and call.args:
                if CACHE_PATH in evaluator.tags(call.args[0], stmt):
                    return f"np.{func.attr}"
            if func.attr in _PATH_WRITERS:
                if CACHE_PATH in evaluator.tags(func.value, stmt):
                    return f"Path.{func.attr}"
        return None


class ScoringStateTokenDrift(ProgramRule):
    """Scoring-function instance state drifts from its cache tokens.

    ``function_tokens`` snapshots a scoring function's scalar instance
    state to build cache keys.  That snapshot is only faithful if (a)
    every ``__init__`` parameter lands in instance state — a parameter
    that is validated but never stored changes behaviour invisibly to the
    tokens — and (b) no method mutates instance state after construction,
    which would make identical tokens describe different behaviour
    depending on call history.  Applies to classes that look like scoring
    functions: a class-level ``name`` string and a ``__call__`` method.
    """

    id = "REP503"
    summary = "scoring-function state drift between __init__ and tokens"
    example_bad = (
        "class Scorer:\n"
        "    name = 'scorer'\n"
        "    def __init__(self, alpha):\n"
        "        check(alpha)  # alpha influences __call__ via a global\n"
        "    def __call__(self, stats):\n"
        "        self._last = stats  # post-construction mutation\n"
    )
    example_good = (
        "class Scorer:\n"
        "    name = 'scorer'\n"
        "    def __init__(self, alpha):\n"
        "        self.alpha = alpha  # visible to function_tokens\n"
        "    def __call__(self, stats):\n"
        "        return f(stats, self.alpha)\n"
    )

    _CONSTRUCTION = frozenset(
        {"__init__", "__post_init__", "__new__", "__setstate__"}
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        for class_key in sorted(program.classes):
            cls = program.classes[class_key]
            if "__call__" not in cls.methods:
                continue
            if not self._has_name_token(cls.node):
                continue
            init_key = cls.methods.get("__init__")
            if init_key is not None:
                init = program.functions[init_key]
                stored = self._stored_value_names(init)
                for param in init.param_names[1:]:
                    if param.startswith("_") or param in stored:
                        continue
                    yield _program_violation(
                        self,
                        init,
                        init.node.lineno,
                        init.node.col_offset,
                        f"__init__ parameter `{param}` of scoring "
                        f"function `{cls.name}` never reaches instance "
                        "state; function_tokens snapshots __init__-time "
                        "state, so this configuration is invisible to "
                        "cache keys — store it on self",
                    )
            for method_name, method_key in sorted(cls.methods.items()):
                if method_name in self._CONSTRUCTION:
                    continue
                method = program.functions[method_key]
                if method.class_key != cls.key:
                    continue
                for stmt, target in self._self_stores(method):
                    yield _program_violation(
                        self,
                        method,
                        stmt.lineno,
                        stmt.col_offset,
                        f"scoring function `{cls.name}` mutates instance "
                        f"state (`{target}`) outside __init__; cached "
                        "entries keyed on construction-time tokens would "
                        "describe stale behaviour — make state immutable "
                        "after construction",
                    )

    @staticmethod
    def _has_name_token(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "name"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                return True
        return False

    @staticmethod
    def _stored_value_names(init: FunctionInfo) -> frozenset[str]:
        """Names loaded inside values assigned to ``self.*`` in __init__."""
        loaded: set[str] = set()
        for stmt in _iter_own_statements(list(init.node.body)):
            value: ast.expr | None = None
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, list(stmt.targets)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                value, targets = stmt.value, [stmt.target]
            if value is None:
                continue
            if not any(
                isinstance(target, ast.Attribute)
                and root_name(target) == "self"
                for target in targets
            ):
                continue
            for sub in ast.walk(value):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, ast.Load
                ):
                    loaded.add(sub.id)
        return frozenset(loaded)

    @staticmethod
    def _self_stores(method: FunctionInfo):
        for stmt in _iter_own_statements(list(method.node.body)):
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield stmt, f"self.{target.attr}"


class ScalarScoringLoop(ProgramRule):
    """A hot path scores groups one at a time through scalar ``__call__``.

    Every registry scoring function carries a vectorized ``score_batch``
    kernel, and :func:`repro.scoring.columnar.score_matrix` /
    :func:`repro.scoring.columnar.score_stats_columns` are the shared
    columnar stages behind the serial path, the parallel workers and the
    service micro-batcher.  A nested
    ``function(stats) for function in functions / for stats in
    batch_group_stats(...)`` loop inside :mod:`repro.engine` or
    :mod:`repro.service` reintroduces the per-(group, function)
    interpreter dispatch the columnar pipeline exists to remove — it is
    both the historical copy-paste twin (the executor worker and the
    micro-batcher once each carried one) and a 3×+ slowdown at 10⁴
    groups (``benchmarks/bench_columnar_scoring.py``).  The sanctioned
    scalar fallback lives in :mod:`repro.scoring.columnar`
    (``scalar_score_column``), outside this rule's scope.
    """

    id = "REP607"
    summary = "per-group scalar scoring loop on an engine/service hot path"
    example_bad = (
        "stats_list = batch_group_stats(context, member_lists)\n"
        "rows = [\n"
        "    [float(function(stats)) for function in functions]\n"
        "    for stats in stats_list\n"
        "]\n"
    )
    example_good = (
        "sizes, matrix = score_stats_columns(\n"
        "    context, member_lists, functions\n"
        ")  # one vectorized kernel per function, not one call per group\n"
    )

    #: Module prefixes whose scoring loops must be columnar.
    _SCOPES = ("repro.engine", "repro.service")

    def check_program(self, program: Program) -> Iterator[Violation]:
        for key in sorted(program.functions):
            info = program.functions[key]
            if not info.modname.startswith(self._SCOPES):
                continue
            stats_lists = self._stats_list_names(info)
            stats_vars, func_vars = self._loop_variables(info, stats_lists)
            if not stats_vars or not func_vars:
                continue
            for stmt in _iter_own_statements(list(info.node.body)):
                for expr in _stmt_expressions(stmt):
                    offender = self._scalar_call(expr, stats_vars, func_vars)
                    if offender is None:
                        continue
                    yield _program_violation(
                        self,
                        info,
                        offender.lineno,
                        offender.col_offset,
                        f"`{info.qualname}` scores groups through the "
                        "scalar per-group `__call__` loop on an "
                        "engine/service hot path; route through the "
                        "shared columnar stage "
                        "(repro.scoring.columnar.score_matrix / "
                        "score_stats_columns) so every function runs "
                        "one vectorized kernel over the batch",
                    )
                    break

    @classmethod
    def _is_stats_producer(cls, expr: ast.expr) -> bool:
        """``expr`` is a call producing per-group stats (or wraps one)."""
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            leaf = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if leaf == "batch_group_stats" or (
                isinstance(func, ast.Attribute) and func.attr == "rows"
            ):
                return True
        return False

    @classmethod
    def _stats_list_names(cls, info: FunctionInfo) -> frozenset[str]:
        """Names bound to ``batch_group_stats(...)`` results."""
        names: set[str] = set()
        for stmt in _iter_own_statements(list(info.node.body)):
            if not isinstance(stmt, ast.Assign):
                continue
            if not cls._is_stats_producer(stmt.value):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return frozenset(names)

    @classmethod
    def _loop_variables(
        cls, info: FunctionInfo, stats_lists: frozenset[str]
    ) -> tuple[frozenset[str], frozenset[str]]:
        """Loop targets iterating stats lists / scoring-function lists."""

        def iterates_stats(iterable: ast.expr) -> bool:
            if cls._is_stats_producer(iterable):
                return True
            return any(
                isinstance(sub, ast.Name) and sub.id in stats_lists
                for sub in ast.walk(iterable)
            )

        def iterates_functions(iterable: ast.expr) -> bool:
            for sub in ast.walk(iterable):
                if isinstance(sub, ast.Name) and sub.id == "functions":
                    return True
                if isinstance(sub, ast.Attribute) and sub.attr == "functions":
                    return True
            return False

        stats_vars: set[str] = set()
        func_vars: set[str] = set()

        def absorb(target: ast.expr, iterable: ast.expr) -> None:
            names = {
                sub.id
                for sub in ast.walk(target)
                if isinstance(sub, ast.Name)
            }
            if iterates_stats(iterable):
                stats_vars.update(names)
            if iterates_functions(iterable):
                func_vars.update(names)

        for stmt in _iter_own_statements(list(info.node.body)):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                absorb(stmt.target, stmt.iter)
            for expr in _stmt_expressions(stmt):
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.comprehension):
                        absorb(sub.target, sub.iter)
        return frozenset(stats_vars), frozenset(func_vars)

    @staticmethod
    def _scalar_call(
        expr: ast.expr,
        stats_vars: frozenset[str],
        func_vars: frozenset[str],
    ) -> ast.Call | None:
        """A ``function(stats)`` call over both loop variables, if any."""
        for sub in ast.walk(expr):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in func_vars
                and any(
                    isinstance(node, ast.Name) and node.id in stats_vars
                    for arg in sub.args
                    for node in ast.walk(arg)
                )
            ):
                return sub
        return None


INTERPROC_RULES: tuple[type[ProgramRule], ...] = (
    WorkerMutatesFrozenState,
    RngReachesProcessBoundary,
    UnpicklableWorkerCallable,
    CompletionOrderMerge,
    WritableFrozenStore,
    CacheKeyMissingInput,
    NonAtomicCacheWrite,
    ScoringStateTokenDrift,
    ScalarScoringLoop,
)
