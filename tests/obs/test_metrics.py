"""Metrics tests: deterministic bucketing, labels, registry behaviour."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestHistogram:
    def test_fixed_bucket_assignment_is_deterministic(self, registry):
        obs.enable(name="hist")
        hist = registry.histogram("t.sizes", "test sizes", "members", [1, 2, 4])
        for value in (0.5, 1, 1.5, 2, 3, 4, 5):
            hist.observe(value)

        snap = hist.snapshot()
        # bucket i holds values <= edges[i]; the last bucket is overflow
        assert snap["edges"] == [1, 2, 4]
        assert snap["counts"] == [2, 2, 2, 1]
        assert snap["count"] == 7
        assert snap["sum"] == pytest.approx(17.0)

    def test_observe_many_matches_repeated_observe(self, registry):
        obs.enable(name="hist")
        one = registry.histogram("t.one", "one", "u", [10, 20])
        many = registry.histogram("t.many", "many", "u", [10, 20])
        values = [3, 10, 11, 20, 21, 200]
        for value in values:
            one.observe(value)
        many.observe_many(values)
        assert one.snapshot() == {**many.snapshot(), "description": "one"}

    def test_edges_must_be_ascending_and_nonempty(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("t.bad", "bad", "u", [])
        with pytest.raises(ValueError):
            registry.histogram("t.bad2", "bad", "u", [4, 2, 1])

    def test_reset_zeroes_buckets(self, registry):
        obs.enable(name="hist")
        hist = registry.histogram("t.r", "r", "u", [1])
        hist.observe(5)
        hist.reset()
        snap = hist.snapshot()
        assert snap["counts"] == [0, 0]
        assert snap["count"] == 0


class TestCounterAndGauge:
    def test_counter_labels_are_independent_substreams(self, registry):
        obs.enable(name="ctr")
        counter = registry.counter("t.kernel", "kernel picks", "batches")
        counter.inc(label="pairs")
        counter.inc(2, label="pairs")
        counter.inc(label="gather")
        counter.inc(10)

        assert counter.value("pairs") == 3
        assert counter.value("gather") == 1
        assert counter.value() == 10
        assert counter.total() == 14
        # snapshot orders labels lexicographically
        assert list(counter.snapshot()["values"]) == ["", "gather", "pairs"]

    def test_gauge_keeps_last_written_value(self, registry):
        obs.enable(name="gauge")
        gauge = registry.gauge("t.ratio", "a ratio")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.value() == 0.75
        assert registry.get("t.ratio") is gauge

    def test_disabled_recording_is_a_noop(self, registry):
        counter = registry.counter("t.off", "off", "count")
        hist = registry.histogram("t.off_h", "off", "u", [1])
        gauge = registry.gauge("t.off_g", "off")
        counter.inc(5)
        hist.observe(3)
        gauge.set(1.0)
        assert counter.total() == 0
        assert hist.snapshot()["count"] == 0
        assert gauge.value() is None


class TestRegistry:
    def test_duplicate_names_raise(self, registry):
        registry.counter("t.dup", "first", "count")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("t.dup", "second")

    def test_snapshot_and_names_are_sorted(self, registry):
        registry.counter("t.zeta", "z", "count")
        registry.counter("t.alpha", "a", "count")
        assert registry.names() == ["t.alpha", "t.zeta"]
        assert list(registry.snapshot()) == ["t.alpha", "t.zeta"]

    def test_two_identical_runs_snapshot_identically(self, registry):
        import json

        obs.enable(name="det")
        counter = registry.counter("t.same", "same", "count")
        hist = registry.histogram("t.same_h", "same", "u", [1, 2, 4, 8])

        def run():
            counter.reset()
            hist.reset()
            for i in range(50):
                counter.inc(label="ab"[i % 2])
                hist.observe(i % 9)
            return json.dumps(registry.snapshot(), sort_keys=True)

        assert run() == run()

    def test_library_instruments_register_into_global_registry(self):
        from repro.obs import instruments  # noqa: F401  (import registers)

        names = obs.REGISTRY.names()
        assert "engine.kernel_selected" in names
        assert "scoring.score_groups_calls" in names
        assert names == sorted(names)
