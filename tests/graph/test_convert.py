"""Tests for graph conversions (the section IV-B collapse among them)."""

import pytest

from repro.graph.convert import (
    from_edges,
    integer_index,
    relabel_nodes,
    to_directed,
    to_undirected,
)
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph


class TestToUndirected:
    def test_reciprocal_pair_collapses_to_one_edge(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3)])
        undirected = to_undirected(graph)
        assert undirected.number_of_edges() == 2
        assert undirected.has_edge(1, 2)
        assert undirected.has_edge(2, 3)

    def test_keeps_isolated_nodes(self):
        graph = DiGraph([(1, 2)])
        graph.add_node(99)
        assert 99 in to_undirected(graph)

    def test_reciprocal_only_drops_one_way_edges(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3)])
        undirected = to_undirected(graph, reciprocal_only=True)
        assert undirected.number_of_edges() == 1
        assert undirected.has_edge(1, 2)

    def test_undirected_input_returns_copy(self, triangle_graph):
        copy = to_undirected(triangle_graph)
        assert copy.number_of_edges() == triangle_graph.number_of_edges()
        copy.remove_edge(1, 2)
        assert triangle_graph.has_edge(1, 2)

    def test_reciprocal_only_invalid_for_undirected(self, triangle_graph):
        with pytest.raises(ValueError):
            to_undirected(triangle_graph, reciprocal_only=True)


class TestToDirected:
    def test_each_edge_becomes_reciprocal_pair(self, triangle_graph):
        directed = to_directed(triangle_graph)
        assert directed.number_of_edges() == 2 * triangle_graph.number_of_edges()
        assert directed.has_edge(1, 2)
        assert directed.has_edge(2, 1)

    def test_round_trip_restores_graph(self, triangle_graph):
        restored = to_undirected(to_directed(triangle_graph))
        assert restored.number_of_edges() == triangle_graph.number_of_edges()
        assert set(map(frozenset, restored.edges)) == set(
            map(frozenset, triangle_graph.edges)
        )


class TestRelabel:
    def test_relabel_undirected(self, triangle_graph):
        mapping = {1: "a", 2: "b", 3: "c", 4: "d"}
        renamed = relabel_nodes(triangle_graph, mapping)
        assert renamed.has_edge("a", "b")
        assert renamed.number_of_edges() == 4

    def test_relabel_directed_preserves_direction(self, small_digraph):
        mapping = {node: node.upper() for node in small_digraph}
        renamed = relabel_nodes(small_digraph, mapping)
        assert renamed.has_edge("C", "D")
        assert not renamed.has_edge("D", "C")

    def test_non_injective_mapping_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            relabel_nodes(triangle_graph, {1: "x", 2: "x", 3: "y", 4: "z"})

    def test_missing_node_in_mapping_raises(self, triangle_graph):
        with pytest.raises(KeyError):
            relabel_nodes(triangle_graph, {1: "a"})


class TestIntegerIndex:
    def test_round_trip(self, small_digraph):
        index_of, nodes = integer_index(small_digraph)
        for label, idx in index_of.items():
            assert nodes[idx] == label

    def test_stable_across_calls(self, small_digraph):
        first, _ = integer_index(small_digraph)
        second, _ = integer_index(small_digraph)
        assert first == second

    def test_covers_all_nodes(self, triangle_graph):
        index_of, nodes = integer_index(triangle_graph)
        assert len(index_of) == len(nodes) == triangle_graph.number_of_nodes()


class TestFromEdges:
    def test_undirected_default(self):
        graph = from_edges([(1, 2)])
        assert isinstance(graph, Graph)

    def test_directed(self):
        graph = from_edges([(1, 2)], directed=True)
        assert isinstance(graph, DiGraph)
        assert not graph.has_edge(2, 1)

    def test_extra_isolated_nodes(self):
        graph = from_edges([(1, 2)], nodes=[7, 8])
        assert graph.number_of_nodes() == 4
