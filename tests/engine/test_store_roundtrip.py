"""Store round trip — `AnalysisContext.save`/`open` must be invisible.

A memmap-backed context is a drop-in for the in-RAM one: same
fingerprint, byte-identical score tables, same cache keys (a batch
scored from RAM is served from cache when re-scored from disk), and the
attached buffers are read-only so nothing can mutate the store through
a context.
"""

import numpy as np
import pytest

from repro import obs
from repro.engine import AnalysisContext, ResultCache
from repro.exceptions import GraphError
from repro.obs.instruments import GROUPS_SCORED
from repro.obs.manifest import fingerprint_context
from repro.scoring import score_groups


@pytest.fixture
def undirected_pair(small_community_dataset, tmp_path):
    context = AnalysisContext(small_community_dataset.graph)
    directory = context.save(tmp_path / "store")
    return context, AnalysisContext.open(directory)


@pytest.fixture
def directed_pair(small_circles_dataset, tmp_path):
    context = AnalysisContext(small_circles_dataset.graph)
    directory = context.save(tmp_path / "store")
    return context, AnalysisContext.open(directory)


class TestFingerprint:
    def test_undirected_fingerprint_survives_round_trip(self, undirected_pair):
        context, opened = undirected_pair
        assert fingerprint_context(opened) == fingerprint_context(context)

    def test_directed_fingerprint_survives_round_trip(self, directed_pair):
        context, opened = directed_pair
        assert opened.is_directed == context.is_directed
        assert fingerprint_context(opened) == fingerprint_context(context)

    def test_graph_wide_caches_survive(self, undirected_pair):
        context, opened = undirected_pair
        assert opened.num_vertices == context.num_vertices
        assert opened.num_edges == context.num_edges
        assert opened.median_degree == context.median_degree
        assert np.array_equal(opened.degree_array, context.degree_array)

    def test_label_boundary_survives(self, directed_pair):
        context, opened = directed_pair
        assert list(opened.csr.nodes) == list(context.csr.nodes)


class TestReadOnly:
    def test_opened_buffers_are_read_only_memmaps(self, undirected_pair):
        _, opened = undirected_pair
        assert isinstance(opened.csr.indices, np.memmap)
        assert not opened.csr.indices.flags.writeable
        assert not opened.csr.indptr.flags.writeable

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(GraphError, match="meta.json"):
            AnalysisContext.open(tmp_path / "nope")

    def test_save_refuses_existing_store_without_overwrite(
        self, undirected_pair, tmp_path
    ):
        context, _ = undirected_pair
        target = tmp_path / "twice"
        context.save(target)
        with pytest.raises(GraphError):
            context.save(target)
        context.save(target, overwrite=True)


class TestScores:
    def test_scores_byte_identical(self, undirected_pair, small_community_dataset):
        context, opened = undirected_pair
        left = score_groups(context, small_community_dataset.groups)
        right = score_groups(opened, small_community_dataset.groups)
        assert left.group_names == right.group_names
        for name in left.function_names():
            assert left.scores(name).tobytes() == right.scores(name).tobytes()

    def test_directed_scores_byte_identical(
        self, directed_pair, small_circles_dataset
    ):
        context, opened = directed_pair
        left = score_groups(context, small_circles_dataset.groups)
        right = score_groups(opened, small_circles_dataset.groups)
        for name in left.function_names():
            assert left.scores(name).tobytes() == right.scores(name).tobytes()

    def test_parallel_scoring_over_store_matches_serial(
        self, undirected_pair, small_community_dataset
    ):
        _, opened = undirected_pair
        serial = score_groups(opened, small_community_dataset.groups)
        sharded = score_groups(opened, small_community_dataset.groups, jobs=2)
        for name in serial.function_names():
            assert serial.scores(name).tobytes() == sharded.scores(name).tobytes()


class TestCacheKeys:
    def test_ram_warmed_cache_serves_mmap_context(
        self, undirected_pair, small_community_dataset, tmp_path
    ):
        """Cache keys hash the fingerprint, so the RAM and mmap contexts
        share entries: a batch scored in RAM replays from disk with zero
        kernel invocations."""
        context, opened = undirected_pair
        cache = ResultCache(tmp_path / "cache")
        warm = score_groups(context, small_community_dataset.groups, cache=cache)
        obs.enable(name="store-cache")
        try:
            before = GROUPS_SCORED.value()
            served = score_groups(
                opened, small_community_dataset.groups, cache=cache
            )
            assert GROUPS_SCORED.value() == before
        finally:
            obs.disable()
        for name in warm.function_names():
            assert warm.scores(name).tobytes() == served.scores(name).tobytes()
