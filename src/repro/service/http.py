"""Hand-rolled HTTP/1.1 parsing and rendering over asyncio streams.

The service speaks exactly the slice of HTTP/1.1 its API needs — no
framework, no third-party dependency, in keeping with the repo-wide
zero-heavy-dep constraint:

* request line + headers + ``Content-Length`` bodies (no chunked
  transfer encoding — a body without a length is a 411, a chunked one
  a 501);
* persistent connections by default, ``Connection: close`` honored;
* responses always carry ``Content-Length`` so pipelined clients can
  delimit them.

Anything malformed maps to :class:`HttpError` with the right status
code; the connection loop turns that into an error response instead of
tearing the socket down.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import unquote, urlsplit

__all__ = ["HttpError", "Request", "Response", "read_request"]

#: Hard request limits: a line longer than this or a body bigger than
#: this is rejected rather than buffered (the API's payloads are small).
MAX_LINE_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_HEADERS = 64

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request defect that maps to one HTTP error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should persist after the response."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> object:
        """Decode the body as JSON, or raise a 400 :class:`HttpError`."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from None


@dataclass
class Response:
    """One response to render; body is ready-to-send bytes."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def render(self, *, keep_alive: bool) -> bytes:
        """Serialize status line, headers and body as wire bytes."""
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        if self.status != 304:
            lines.append(f"Content-Type: {self.content_type}")
        lines.append(f"Content-Length: {0 if self.status == 304 else len(self.body)}")
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
        if self.status == 304:
            return head
        return head + self.body


def json_response(
    status: int, payload: object, *, headers: dict[str, str] | None = None
) -> Response:
    """Build a JSON response with deterministic (sorted-key) encoding."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return Response(status, body, headers=dict(headers or {}))


def error_response(status: int, message: str) -> Response:
    """Build the service's uniform JSON error envelope."""
    return json_response(
        status, {"error": {"status": status, "message": message}}
    )


def parse_query(raw: str) -> dict[str, str]:
    """Parse ``a=1&b=2`` into a dict (last duplicate wins, keys unquoted)."""
    query: dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        name, _, value = part.partition("=")
        query[unquote(name)] = unquote(value.replace("+", " "))
    return query


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long") from None
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(400, "request line too long")
    return line


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Read one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` on anything malformed; the caller answers
    with the matching status and closes the connection.
    """
    line = await _read_line(reader)
    if not line.strip():
        return None
    try:
        method, target, version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    while True:
        raw = await _read_line(reader)
        if not raw.strip():
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(400, "too many headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {raw!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked transfer encoding is not supported")
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body") from None
    elif method in ("POST", "PUT"):
        raise HttpError(411, "Content-Length required")

    parts = urlsplit(target)
    path = unquote(parts.path) or "/"
    return Request(
        method=method.upper(),
        target=target,
        path=path,
        query=parse_query(parts.query),
        headers=headers,
        body=body,
    )
