"""Partition-vs-groups agreement metric tests."""

import pytest

from repro.data.groups import Community, GroupSet
from repro.detection.overlap_metrics import (
    best_match_jaccard,
    coverage_fraction,
    mean_best_jaccard,
)


@pytest.fixture
def partition():
    return [{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}]


class TestBestMatchJaccard:
    def test_exact_match(self, partition):
        group = Community(name="g", members=frozenset({0, 1, 2, 3}))
        assert best_match_jaccard(group, partition) == 1.0

    def test_partial_match(self, partition):
        group = Community(name="g", members=frozenset({0, 1, 4}))
        # vs block 0: |{0,1}| / |{0,1,2,3,4}| = 2/5
        assert best_match_jaccard(group, partition) == pytest.approx(2 / 5)

    def test_no_overlap(self, partition):
        group = Community(name="g", members=frozenset({100}))
        assert best_match_jaccard(group, partition) == 0.0

    def test_accepts_frozenset(self, partition):
        assert best_match_jaccard(frozenset({8, 9}), partition) == 1.0

    def test_empty_partition(self):
        group = Community(name="g", members=frozenset({1}))
        assert best_match_jaccard(group, []) == 0.0


class TestMeanBestJaccard:
    def test_perfect_recovery(self, partition):
        groups = GroupSet(
            groups=[
                Community(name="a", members=frozenset({0, 1, 2, 3})),
                Community(name="b", members=frozenset({4, 5, 6, 7})),
            ]
        )
        assert mean_best_jaccard(groups, partition) == 1.0

    def test_mixed_recovery(self, partition):
        groups = [
            Community(name="a", members=frozenset({0, 1, 2, 3})),  # 1.0
            Community(name="b", members=frozenset({100})),  # 0.0
        ]
        assert mean_best_jaccard(groups, partition) == pytest.approx(0.5)

    def test_empty_groups(self, partition):
        assert mean_best_jaccard([], partition) == 0.0


class TestCoverageFraction:
    def test_fully_contained(self, partition):
        group = Community(name="g", members=frozenset({4, 5}))
        assert coverage_fraction(group, partition) == 1.0

    def test_split_group(self, partition):
        group = Community(name="g", members=frozenset({3, 4}))
        assert coverage_fraction(group, partition) == pytest.approx(0.5)
