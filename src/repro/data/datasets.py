"""Dataset bundles and the paper's data-set registry (Table III).

A :class:`Dataset` couples a social graph with its vertex groups (circles
or communities) and descriptive metadata.  :data:`PAPER_DATASETS` records
the published statistics of the four corpora in the paper's Table III, and
:data:`MAGNO_REFERENCE` the comparison column of Table II; experiments use
these as the "paper" side of paper-vs-measured reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.data.ego import EgoNetworkCollection
from repro.data.groups import GroupSet
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph

StructureKind = Literal["circles", "communities"]

__all__ = ["Dataset", "DatasetSpec", "PAPER_DATASETS", "MAGNO_REFERENCE"]


@dataclass
class Dataset:
    """A social graph together with its groups and provenance metadata.

    Attributes
    ----------
    name:
        Data-set identifier (``google_plus``, ``twitter``, ...).
    graph:
        The social graph :math:`G(V, E)`.
    groups:
        The circles or communities evaluated by the scoring functions.
    structure:
        ``"circles"`` for selective-sharing groups, ``"communities"`` for
        member-joined groups — the axis of the paper's comparison.
    ego_collection:
        For ego-crawled corpora, the underlying collection (enables the
        overlap analyses of Figs. 1–2); ``None`` otherwise.
    """

    name: str
    graph: Graph | DiGraph
    groups: GroupSet
    structure: StructureKind
    ego_collection: EgoNetworkCollection | None = None

    @property
    def directed(self) -> bool:
        """Whether the social graph is directed."""
        return self.graph.is_directed

    def summary_row(self) -> dict[str, object]:
        """Table III row for this data set (measured side)."""
        return {
            "dataset": self.name,
            "vertices": self.graph.number_of_nodes(),
            "edges": self.graph.number_of_edges(),
            "type": "directed" if self.directed else "undirected",
            "structure": self.structure.capitalize(),
            "num_groups": len(self.groups),
        }

    def __repr__(self) -> str:
        return (
            f"<Dataset {self.name!r}: {self.graph.number_of_nodes()} vertices,"
            f" {self.graph.number_of_edges()} edges,"
            f" {len(self.groups)} {self.structure}>"
        )


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one corpus, as reported in the paper."""

    name: str
    vertices: int
    edges: int
    directed: bool
    structure: StructureKind
    num_groups: int
    source: str
    diameter: int | None = None
    average_shortest_path: float | None = None
    average_in_degree: float | None = None
    average_out_degree: float | None = None
    degree_distribution: str | None = None
    notes: str = ""
    extras: dict = field(default_factory=dict)


#: Table III of the paper: the four corpora compared in Fig. 6.
PAPER_DATASETS: dict[str, DatasetSpec] = {
    "google_plus": DatasetSpec(
        name="google_plus",
        vertices=107_614,
        edges=13_673_453,
        directed=True,
        structure="circles",
        num_groups=468,
        source="McAuley & Leskovec (NIPS 2012) ego-Gplus",
        diameter=13,
        average_shortest_path=3.32,
        average_in_degree=127.0,
        average_out_degree=189.0,
        degree_distribution="log-normal",
        notes=(
            "133 joined ego networks of users sharing >= 2 circles; "
            "93.5% of the ego networks overlap; mean clustering 0.4901"
        ),
        extras={
            "num_ego_networks": 133,
            "overlap_fraction": 0.935,
            "mean_clustering": 0.4901,
        },
    ),
    "twitter": DatasetSpec(
        name="twitter",
        vertices=81_306,
        edges=1_768_149,
        directed=True,
        structure="circles",
        num_groups=100,
        source="McAuley & Leskovec (NIPS 2012) ego-Twitter ('lists')",
    ),
    "livejournal": DatasetSpec(
        name="livejournal",
        vertices=3_997_962,
        edges=34_681_189,
        directed=False,
        structure="communities",
        num_groups=5000,
        source="Yang & Leskovec (MDS 2012) com-LiveJournal, top 5000",
    ),
    "orkut": DatasetSpec(
        name="orkut",
        vertices=3_072_441,
        edges=117_185_083,
        directed=False,
        structure="communities",
        num_groups=5000,
        source="Mislove et al. (IMC 2007) com-Orkut, top 5000",
    ),
}


#: Table II comparison column: the Magno et al. BFS crawl of Google+.
MAGNO_REFERENCE = DatasetSpec(
    name="magno_bfs_crawl",
    vertices=35_114_957,
    edges=575_141_097,
    directed=True,
    structure="circles",
    num_groups=0,
    source="Magno et al. (IMC 2012) BFS crawl",
    diameter=19,
    average_shortest_path=5.9,
    average_in_degree=16.4,
    average_out_degree=16.4,
    degree_distribution="power-law (alpha_in=1.3, alpha_out=1.2)",
    notes="BFS crawl; sparse, loosely connected — contrast to ego-joined corpus",
)
