"""Figure 4 — CDF of the local clustering coefficient of the Google+ corpus.

Paper claims reproduced: the distribution is smooth and roughly symmetric
around a high mean of 0.4901 — far above earlier Google+ crawls (Gong et
al.: 0.32; Magno et al.: ~0.25) because the ego-joined corpus is dense.
"""

import numpy as np

from repro.algorithms.triangles import clustering_values
from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.report import render_cdf_panel
from repro.data.datasets import PAPER_DATASETS


def test_fig4_clustering_cdf(benchmark, gplus):
    values = benchmark.pedantic(
        lambda: clustering_values(gplus.graph, sample=2000, seed=0),
        rounds=1,
        iterations=1,
    )
    cdf = EmpiricalCDF(values, label="clustering")
    paper_mean = PAPER_DATASETS["google_plus"].extras["mean_clustering"]

    print()
    print(render_cdf_panel({"clustering": cdf}, title="Fig. 4 clustering CDF"))
    print(f"measured mean: {cdf.mean:.4f}   paper mean: {paper_mean}")
    benchmark.extra_info["mean_clustering"] = cdf.mean
    benchmark.extra_info["paper_mean_clustering"] = paper_mean

    # High mean near the paper's 0.4901 (and far above the sparse crawls).
    assert abs(cdf.mean - paper_mean) < 0.1
    assert cdf.mean > 0.35
    # Smooth, roughly symmetric shape: mean ~ median, interior quantiles
    # spread out rather than piling at 0 or 1.
    assert abs(cdf.mean - cdf.median) < 0.08
    assert 0.05 < cdf.quantile(0.25) < cdf.quantile(0.75) < 0.95
    assert cdf(0.02) < 0.2  # no mass spike at zero
    assert cdf.fraction_above(0.98) < 0.2  # no mass spike at one


def test_fig4_sampled_estimator_consistency(gplus):
    """Two disjoint samples give the same mean within noise — the sampled
    estimator behind the figure is stable."""
    first = clustering_values(gplus.graph, sample=1200, seed=1).mean()
    second = clustering_values(gplus.graph, sample=1200, seed=2).mean()
    assert abs(first - second) < 0.05
