"""Seed-determinism checker for the stochastic pipelines.

Every experiment behind the paper's figures samples, rewires or detects
under an explicit seed; the claim "same seed, same output" is what makes
the reproduction auditable.  This module turns the claim into a check: a
*pipeline* is a named callable ``fn(seed) -> object``; the checker runs
it several times with the same seed, canonicalizes each output
(graphs -> sorted edge lists, sets -> sorted lists, floats -> exact
``repr``), and diffs the serializations.  Any divergence — unseeded
randomness, hash-order iteration leaking into output, shared mutable
state — fails loudly with the first differing position.

A default registry covers one or more pipelines in each stochastic
package (``sampling/``, ``nullmodel/``, ``detection/``, ``synth/``)::

    python -m repro.devtools.determinism            # check all
    python -m repro.devtools.determinism --fast     # skip slow pipelines
    repro check                                     # same, via the CLI

Note: two runs inside one process share a hash seed, so divergence
*across* interpreter invocations (``PYTHONHASHSEED``) is covered by the
regression test ``tests/devtools/test_seed_stability.py`` instead.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph

__all__ = [
    "DeterminismReport",
    "PIPELINES",
    "FAST_PIPELINES",
    "register_pipeline",
    "canonicalize",
    "fingerprint",
    "check_pipeline",
    "check_all",
    "main",
]


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of running one pipeline ``runs`` times under one seed."""

    pipeline: str
    seed: int
    runs: int
    identical: bool
    fingerprint: str
    first_divergence: str | None = None

    def format(self) -> str:
        status = "PASS" if self.identical else "FAIL"
        tail = f" ({self.first_divergence})" if self.first_divergence else ""
        return (
            f"{status}  {self.pipeline}  seed={self.seed} runs={self.runs} "
            f"fingerprint={self.fingerprint[:12]}{tail}"
        )


def canonicalize(obj: object) -> object:
    """Reduce ``obj`` to a JSON-serializable canonical form.

    Graphs become sorted node/edge lists (undirected edges are sorted
    within the pair), sets become sorted lists, dicts sort by key, numpy
    scalars/arrays become Python lists, and floats keep full ``repr``
    precision so bit-level drift is visible.
    """
    if isinstance(obj, Graph):
        return {
            "type": "Graph",
            "nodes": sorted((repr(n) for n in obj.nodes)),
            "edges": sorted(
                tuple(sorted((repr(u), repr(v)))) for u, v in obj.edges
            ),
        }
    if isinstance(obj, DiGraph):
        return {
            "type": "DiGraph",
            "nodes": sorted(repr(n) for n in obj.nodes),
            "edges": sorted((repr(u), repr(v)) for u, v in obj.edges),
        }
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(item) for item in obj)
    if isinstance(obj, dict):
        return {
            repr(key): canonicalize(value)
            for key, value in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, np.ndarray):
        return [canonicalize(item) for item in obj.tolist()]
    if isinstance(obj, (np.integer, np.floating)):
        return canonicalize(obj.item())
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    return repr(obj)


def _serialize(obj: object) -> str:
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def fingerprint(obj: object) -> str:
    """SHA-256 of the canonical serialization of ``obj``."""
    return hashlib.sha256(_serialize(obj).encode("utf-8")).hexdigest()


def _first_divergence(reference: str, other: str) -> str:
    limit = min(len(reference), len(other))
    for index in range(limit):
        if reference[index] != other[index]:
            lo = max(0, index - 20)
            return (
                f"first divergence at byte {index}: "
                f"...{reference[lo:index + 20]!r} vs ...{other[lo:index + 20]!r}"
            )
    return (
        f"outputs are prefixes of each other "
        f"(lengths {len(reference)} vs {len(other)})"
    )


# -- pipeline registry -------------------------------------------------------

#: All registered pipelines: name -> fn(seed) -> object.
PIPELINES: dict[str, Callable[[int], object]] = {}

#: Names cheap enough for the pre-commit gate (``--fast``).
FAST_PIPELINES: list[str] = []


def register_pipeline(
    name: str, fn: Callable[[int], object] | None = None, *, fast: bool = True
):
    """Register ``fn`` under ``name``; usable as a decorator.

    ``fast=False`` keeps the pipeline out of the ``--fast`` gate run.
    """

    def _register(target: Callable[[int], object]) -> Callable[[int], object]:
        PIPELINES[name] = target
        if fast:
            FAST_PIPELINES.append(name)
        return target

    if fn is not None:
        return _register(fn)
    return _register


def check_pipeline(
    name: str, *, seed: int = 0, runs: int = 2
) -> DeterminismReport:
    """Run a registered pipeline ``runs`` times and diff the outputs."""
    try:
        fn = PIPELINES[name]
    except KeyError:
        known = ", ".join(sorted(PIPELINES))
        raise KeyError(f"unknown pipeline {name!r}; known: {known}") from None
    if runs < 2:
        raise ValueError("determinism needs at least two runs")
    reference = _serialize(fn(seed))
    for _ in range(runs - 1):
        repeat = _serialize(fn(seed))
        if repeat != reference:
            return DeterminismReport(
                pipeline=name,
                seed=seed,
                runs=runs,
                identical=False,
                fingerprint=hashlib.sha256(
                    reference.encode("utf-8")
                ).hexdigest(),
                first_divergence=_first_divergence(reference, repeat),
            )
    return DeterminismReport(
        pipeline=name,
        seed=seed,
        runs=runs,
        identical=True,
        fingerprint=hashlib.sha256(reference.encode("utf-8")).hexdigest(),
    )


def check_all(
    names: Iterable[str] | None = None, *, seed: int = 0, runs: int = 2
) -> list[DeterminismReport]:
    """Check every named (default: every registered) pipeline."""
    selected = list(names) if names is not None else sorted(PIPELINES)
    return [check_pipeline(name, seed=seed, runs=runs) for name in selected]


# -- default pipelines -------------------------------------------------------
#
# Each stochastic package contributes at least one pipeline.  The base
# graphs are themselves seeded, so the only randomness under test is the
# pipeline's own.  String node labels make hash-order dependence visible.


def _base_graph() -> Graph:
    from repro.synth.random_graphs import erdos_renyi_graph

    graph = erdos_renyi_graph(60, 0.1, seed=7)
    # String labels: set iteration over these is PYTHONHASHSEED-dependent,
    # which is exactly the failure mode the samplers must not leak.
    from repro.graph.convert import relabel_nodes

    mapping = {node: f"v{node:03d}" for node in graph}
    relabeled = relabel_nodes(graph, mapping)
    assert isinstance(relabeled, Graph)
    return relabeled


@register_pipeline("sampling.random_walk")
def _pipeline_random_walk(seed: int) -> object:
    from repro.sampling.random_walk import matched_random_sets

    return matched_random_sets(_base_graph(), [5, 8, 13], seed=seed)


@register_pipeline("sampling.forest_fire")
def _pipeline_forest_fire(seed: int) -> object:
    from repro.sampling.random_sets import sample_matched_sets

    return sample_matched_sets(_base_graph(), [6, 9], "forest_fire", seed=seed)


@register_pipeline("sampling.bfs_ball")
def _pipeline_bfs_ball(seed: int) -> object:
    from repro.sampling.random_sets import sample_matched_sets

    return sample_matched_sets(_base_graph(), [6, 9], "bfs_ball", seed=seed)


@register_pipeline("engine.random_walk")
def _pipeline_engine_random_walk(seed: int) -> object:
    from repro.engine import AnalysisContext, sample_matched_sets

    context = AnalysisContext(_base_graph())
    return sample_matched_sets(context, [5, 8, 13], "random_walk", seed=seed)


@register_pipeline("engine.bfs_ball")
def _pipeline_engine_bfs_ball(seed: int) -> object:
    from repro.engine import AnalysisContext, sample_matched_sets

    context = AnalysisContext(_base_graph())
    return sample_matched_sets(context, [6, 9], "bfs_ball", seed=seed)


@register_pipeline("engine.uniform")
def _pipeline_engine_uniform(seed: int) -> object:
    from repro.engine import AnalysisContext, sample_matched_sets

    context = AnalysisContext(_base_graph())
    return sample_matched_sets(context, [6, 9, 20], "uniform", seed=seed)


@register_pipeline("nullmodel.double_edge_swap")
def _pipeline_double_edge_swap(seed: int) -> object:
    from repro.nullmodel.rewiring import double_edge_swap

    graph = _base_graph()
    swaps = double_edge_swap(graph, 80, seed=seed)
    return {"swaps": swaps, "graph": graph}


@register_pipeline("nullmodel.viger_latapy")
def _pipeline_viger_latapy(seed: int) -> object:
    from repro.algorithms.degrees import degree_sequence
    from repro.nullmodel.viger_latapy import viger_latapy_graph

    degrees = [int(d) for d in degree_sequence(_base_graph()) if d >= 1]
    return viger_latapy_graph(degrees, seed=seed)


@register_pipeline("detection.louvain")
def _pipeline_louvain(seed: int) -> object:
    from repro.detection.louvain import louvain_communities

    return louvain_communities(_base_graph(), seed=seed)


@register_pipeline("detection.label_propagation")
def _pipeline_label_propagation(seed: int) -> object:
    from repro.detection.label_propagation import label_propagation_communities

    return label_propagation_communities(_base_graph(), seed=seed)


@register_pipeline("synth.erdos_renyi")
def _pipeline_erdos_renyi(seed: int) -> object:
    from repro.synth.random_graphs import erdos_renyi_graph

    return erdos_renyi_graph(70, 0.08, seed=seed)


@register_pipeline("synth.ego_collection", fast=False)
def _pipeline_ego_collection(seed: int) -> object:
    from repro.synth.ego_generator import EgoCollectionConfig, generate_ego_collection

    config = EgoCollectionConfig(num_egos=3)
    collection = generate_ego_collection(config, seed=seed)
    return {
        network.ego: {
            circle.name: circle.members for circle in network.circles
        }
        for network in collection
    }


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.devtools.determinism``."""
    parser = argparse.ArgumentParser(
        prog="repro.devtools.determinism",
        description="Run registered stochastic pipelines twice per seed "
        "and diff canonical outputs",
    )
    parser.add_argument(
        "pipelines", nargs="*", help="pipeline names (default: all)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument(
        "--fast", action="store_true", help="only the fast gate pipelines"
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered pipelines"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(PIPELINES):
            tag = "" if name in FAST_PIPELINES else "  [slow]"
            print(f"{name}{tag}")
        return 0
    names: Iterable[str] | None
    if args.pipelines:
        unknown = [name for name in args.pipelines if name not in PIPELINES]
        if unknown:
            for name in unknown:
                print(f"error: unknown pipeline: {name}", file=sys.stderr)
            print(
                f"known: {', '.join(sorted(PIPELINES))}", file=sys.stderr
            )
            return 2
        names = args.pipelines
    elif args.fast:
        names = sorted(FAST_PIPELINES)
    else:
        names = None
    reports = check_all(names, seed=args.seed, runs=args.runs)
    failures = 0
    for report in reports:
        print(report.format())
        failures += 0 if report.identical else 1
    if failures:
        print(f"{failures} pipeline(s) diverged")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
