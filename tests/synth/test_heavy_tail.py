"""Heavy-tailed sampler tests."""

import numpy as np
import pytest

from repro.synth.heavy_tail import bounded_zipf_sample, lognormal_sizes, zipf_weights


class TestLognormalSizes:
    def test_shape_and_bounds(self):
        sizes = lognormal_sizes(500, median=50, sigma=0.5, minimum=5, maximum=200, seed=0)
        assert len(sizes) == 500
        assert sizes.min() >= 5
        assert sizes.max() <= 200
        assert sizes.dtype == np.int64

    def test_median_roughly_respected(self):
        sizes = lognormal_sizes(5000, median=100, sigma=0.4, seed=1)
        assert np.median(sizes) == pytest.approx(100, rel=0.1)

    def test_reproducible(self):
        a = lognormal_sizes(50, median=30, sigma=0.5, seed=7)
        b = lognormal_sizes(50, median=30, sigma=0.5, seed=7)
        assert (a == b).all()

    def test_zero_count(self):
        assert len(lognormal_sizes(0, median=10, sigma=0.5, seed=0)) == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            lognormal_sizes(-1, median=10, sigma=0.5)
        with pytest.raises(ValueError):
            lognormal_sizes(5, median=0, sigma=0.5)
        with pytest.raises(ValueError):
            lognormal_sizes(5, median=10, sigma=-1)


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert (np.diff(weights) <= 0).all()

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_higher_exponent_concentrates(self):
        flat = zipf_weights(100, 0.5)
        steep = zipf_weights(100, 2.0)
        assert steep[0] > flat[0]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, -0.5)


class TestBoundedZipfSample:
    def test_distinct_and_in_range(self):
        sample = bounded_zipf_sample(100, 30, exponent=1.0, seed=0)
        assert len(sample) == 30
        assert len(set(sample.tolist())) == 30
        assert sample.min() >= 0
        assert sample.max() < 100

    def test_bias_toward_low_ranks(self):
        hits = np.zeros(50)
        for seed in range(200):
            sample = bounded_zipf_sample(50, 5, exponent=1.5, seed=seed)
            hits[sample] += 1
        assert hits[0] > hits[25]

    def test_oversample_rejected(self):
        with pytest.raises(ValueError):
            bounded_zipf_sample(5, 10)
