"""CSR-native samplers replay the legacy label-level samplers exactly.

The Fig. 5 acceptance bar is seed-for-seed identical output: the engine
samplers must consume randomness exactly like their legacy counterparts
so that every published number survives the substrate swap unchanged.
The insertion order of the test graphs is deliberately scrambled so
vertex-id order and label order disagree — the case that distinguishes
"same distribution" from "same draw".
"""

import random

import pytest

from repro.engine import (
    ENGINE_SAMPLERS,
    AnalysisContext,
    bfs_ball_set,
    random_walk_set,
    sample_matched_sets,
    uniform_vertex_set,
)
from repro.exceptions import SamplingError
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.sampling import random_sets as legacy
from repro.sampling.random_walk import random_walk_set as legacy_random_walk


def scrambled_graph(directed, n=40, m=150, seed=13):
    rng = random.Random(seed)
    graph = (DiGraph if directed else Graph)()
    order = list(range(n))
    rng.shuffle(order)  # id order != label order
    for i in order:
        graph.add_node(f"v{i:03d}")
    labels = [f"v{i:03d}" for i in range(n)]
    while graph.number_of_edges() < m:
        u, v = rng.sample(labels, 2)
        graph.add_edge(u, v)
    return graph


@pytest.mark.parametrize("directed", [False, True])
@pytest.mark.parametrize("seed", [0, 7])
class TestLegacyReplay:
    def test_random_walk(self, directed, seed):
        graph = scrambled_graph(directed)
        context = AnalysisContext(graph)
        for size in (1, 6, 25):
            assert random_walk_set(
                context, size, seed=seed
            ) == legacy_random_walk(graph, size, seed=seed)

    def test_bfs_ball(self, directed, seed):
        graph = scrambled_graph(directed)
        context = AnalysisContext(graph)
        for size in (1, 6, 25):
            assert bfs_ball_set(context, size, seed=seed) == legacy.bfs_ball_set(
                graph, size, seed=seed
            )

    def test_uniform(self, directed, seed):
        graph = scrambled_graph(directed)
        context = AnalysisContext(graph)
        for size in (1, 6, 40):
            assert uniform_vertex_set(
                context, size, seed=seed
            ) == legacy.uniform_vertex_set(graph, size, seed=seed)

    @pytest.mark.parametrize(
        "sampler", ["random_walk", "bfs_ball", "uniform", "forest_fire"]
    )
    def test_matched_sets(self, directed, seed, sampler):
        graph = scrambled_graph(directed)
        context = AnalysisContext(graph)
        assert sample_matched_sets(
            context, [3, 9, 14], sampler, seed=seed
        ) == legacy.sample_matched_sets(graph, [3, 9, 14], sampler, seed=seed)


class TestSamplerContracts:
    def test_members_are_labels(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        sample = uniform_vertex_set(context, 2, seed=0)
        assert sample <= set(triangle_graph.nodes)

    def test_exact_size(self, two_cliques_graph):
        context = AnalysisContext(two_cliques_graph)
        for size in (1, 4, 8):
            assert len(random_walk_set(context, size, seed=1)) == size
            assert len(bfs_ball_set(context, size, seed=1)) == size
            assert len(uniform_vertex_set(context, size, seed=1)) == size

    def test_oversized_request_raises(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        with pytest.raises(SamplingError):
            random_walk_set(context, 99, seed=0)

    def test_nonpositive_size_raises(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        with pytest.raises(ValueError):
            uniform_vertex_set(context, 0, seed=0)

    def test_unknown_sampler_raises(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        with pytest.raises(KeyError, match="unknown sampler"):
            sample_matched_sets(context, [2], "metropolis", seed=0)

    def test_registry_names(self):
        assert set(ENGINE_SAMPLERS) == {"uniform", "bfs_ball", "random_walk"}

    def test_restart_covers_disconnected_graph(self):
        graph = Graph([(1, 2), (3, 4), (5, 6)])
        context = AnalysisContext(graph)
        assert len(random_walk_set(context, 5, seed=0)) == 5
        assert len(bfs_ball_set(context, 5, seed=0)) == 5
