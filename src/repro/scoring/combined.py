"""Scoring functions combining internal and external connectivity.

The paper's representative (section V-c) is **Conductance**, which it
highlights as capturing "the common intuition of a community" and as the
metric with the most striking circles-vs-communities difference (Fig. 6c).
The remaining functions are the combined-family members of the
Yang–Leskovec catalogue.
"""

from __future__ import annotations

import numpy as np

from repro.scoring.base import GroupStats
from repro.scoring.columnar import GroupStatsBatch

__all__ = [
    "Conductance",
    "NormalizedCut",
    "MaxOutDegreeFraction",
    "AverageOutDegreeFraction",
    "FlakeOutDegreeFraction",
    "Separability",
]


def _member_outside_fractions(batch: GroupStatsBatch) -> np.ndarray:
    """Per-member outside-edge fractions, flat across the whole batch.

    Mirrors the ODF scalar paths' per-group arithmetic exactly — the
    expression is elementwise, so computing it over the concatenated
    member arrays yields the same float64 values the per-group arrays
    would.
    """
    degrees = batch.member_degrees
    outside = batch.member_boundary_degrees
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(degrees > 0, outside / np.maximum(degrees, 1), 0.0)


class Conductance:
    """Conductance: :math:`f(C) = c_C / (2 m_C + c_C)` (paper eq. 3).

    Fraction of the group's total edge volume that points outside.  A well
    pronounced community scores near 0; a group as densely wired to the
    outside as inside scores near 1.  Evaluating a ratio of edge counts,
    it self-corrects for the density of the underlying graph.
    Isolated groups (no edges at all) score 0 by convention.
    """

    name = "conductance"

    def __call__(self, stats: GroupStats) -> float:
        volume = 2 * stats.m_C + stats.c_C
        if volume == 0:
            return 0.0
        return stats.c_C / volume

    def score_batch(self, batch: GroupStatsBatch) -> np.ndarray:
        """Score a columnar batch (bitwise identical to ``__call__``)."""
        volume = 2 * batch.m_C + batch.c_C
        return np.where(volume == 0, 0.0, batch.c_C / np.maximum(volume, 1))


class NormalizedCut:
    """Normalized Cut (Shi & Malik): conductance plus the complement term
    :math:`c_C / (2 (m - m_C) + c_C)`."""

    name = "normalized_cut"

    def __call__(self, stats: GroupStats) -> float:
        first_volume = 2 * stats.m_C + stats.c_C
        second_volume = 2 * (stats.m - stats.m_C) + stats.c_C
        first = stats.c_C / first_volume if first_volume else 0.0
        second = stats.c_C / second_volume if second_volume else 0.0
        return first + second

    def score_batch(self, batch: GroupStatsBatch) -> np.ndarray:
        """Score a columnar batch (bitwise identical to ``__call__``)."""
        first_volume = 2 * batch.m_C + batch.c_C
        second_volume = 2 * (batch.m - batch.m_C) + batch.c_C
        first = np.where(
            first_volume == 0, 0.0, batch.c_C / np.maximum(first_volume, 1)
        )
        second = np.where(
            second_volume == 0, 0.0, batch.c_C / np.maximum(second_volume, 1)
        )
        return first + second


class MaxOutDegreeFraction:
    """Max-ODF: the worst member's fraction of edges leaving the group.

    :math:`\\max_{v \\in C} \\frac{|\\{(v,u): u \\notin C\\}|}{d(v)}`.
    """

    name = "max_odf"

    def __call__(self, stats: GroupStats) -> float:
        degrees = stats.member_degrees
        outside = stats.member_boundary_degrees
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(degrees > 0, outside / np.maximum(degrees, 1), 0.0)
        return float(fractions.max()) if fractions.size else 0.0

    def score_batch(self, batch: GroupStatsBatch) -> np.ndarray:
        """Score a columnar batch (bitwise identical to ``__call__``).

        The per-member fractions are elementwise, and a float maximum is
        exact in any order, so the segment ``reduceat`` matches the
        scalar path's per-group ``.max()`` byte for byte.
        """
        fractions = _member_outside_fractions(batch)
        return batch.group_max(fractions)


class AverageOutDegreeFraction:
    """Average-ODF: mean fraction of member edges leaving the group."""

    name = "avg_odf"

    def __call__(self, stats: GroupStats) -> float:
        degrees = stats.member_degrees
        outside = stats.member_boundary_degrees
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(degrees > 0, outside / np.maximum(degrees, 1), 0.0)
        return float(fractions.mean()) if fractions.size else 0.0

    def score_batch(self, batch: GroupStatsBatch) -> np.ndarray:
        """Score a columnar batch (bitwise identical to ``__call__``).

        Float means are order-sensitive (numpy sums pairwise), so each
        group's mean runs on its own contiguous slice — same length,
        same values, same summation tree as the scalar path — instead
        of through a sequential ``reduceat``.
        """
        fractions = _member_outside_fractions(batch)
        offsets = batch.group_offsets.tolist()
        scores = np.empty(len(batch), dtype=np.float64)
        for g in range(len(batch)):
            scores[g] = fractions[offsets[g] : offsets[g + 1]].mean()
        return scores


class FlakeOutDegreeFraction:
    """Flake-ODF: fraction of members with fewer internal than external
    edge endpoints (i.e. internal degree < d(v)/2)."""

    name = "flake_odf"

    def __call__(self, stats: GroupStats) -> float:
        internal = stats.member_internal_degrees
        flake = int((internal < stats.member_degrees / 2.0).sum())
        return flake / stats.n_C

    def score_batch(self, batch: GroupStatsBatch) -> np.ndarray:
        """Score a columnar batch (bitwise identical to ``__call__``)."""
        flake = batch.group_sum(
            (
                batch.member_internal_degrees < batch.member_degrees / 2.0
            ).astype(np.int64)
        )
        return flake / batch.n_C


class Separability:
    """Separability: ratio of internal to boundary edges, :math:`m_C / c_C`.

    Higher is more separated.  Groups with no boundary edges score
    ``inf`` when they have internal edges and 0 when fully isolated.
    """

    name = "separability"

    def __call__(self, stats: GroupStats) -> float:
        if stats.c_C == 0:
            return float("inf") if stats.m_C else 0.0
        return stats.m_C / stats.c_C

    def score_batch(self, batch: GroupStatsBatch) -> np.ndarray:
        """Score a columnar batch (bitwise identical to ``__call__``)."""
        isolated = np.where(batch.m_C != 0, np.inf, 0.0)
        return np.where(
            batch.c_C == 0, isolated, batch.m_C / np.maximum(batch.c_C, 1)
        )
