"""Subprocess identity gate: tracing must never change a result.

Runs the same scoring workload in two fresh interpreters — one with
``REPRO_TRACE=1``, one with tracing off — and asserts the printed score
bytes are identical.  A fresh process per run makes the check honest: the
environment flag is read at import time, exactly as a user would hit it.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

WORKLOAD = """
import sys

from repro.data.groups import VertexGroup
from repro.graph.ugraph import Graph
from repro.scoring.registry import score_groups

graph = Graph(name="identity")
for i in range(40):
    graph.add_edge(i, (i + 1) % 40)
    graph.add_edge(i, (i + 7) % 40)
groups = [
    VertexGroup(name=f"g{start}", members=frozenset(range(start, start + 6)))
    for start in range(0, 30, 3)
]
table = score_groups(graph, groups)
print(table.group_names)
for name in sorted(table.columns):
    print(name, table.columns[name].tobytes().hex())
"""


def run_workload(trace: bool) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_TRACE", None)
    if trace:
        env["REPRO_TRACE"] = "1"
    return subprocess.run(
        [sys.executable, "-c", WORKLOAD],
        capture_output=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )


def test_stdout_is_byte_identical_with_tracing_on_and_off():
    off = run_workload(trace=False)
    on = run_workload(trace=True)
    assert off.returncode == 0, off.stderr.decode()
    assert on.returncode == 0, on.stderr.decode()
    assert off.stdout == on.stdout
    assert b"identity" not in off.stderr  # nothing written implicitly
