"""Quickstart: build the synthetic Google+ corpus, score its circles, and
check the paper's headline numbers.

Run::

    python examples/quickstart.py
"""

from repro import (
    EmpiricalCDF,
    build_google_plus,
    circles_vs_random,
    render_kv,
    render_table,
)


def main() -> None:
    # 1. Build the synthetic stand-in for the McAuley-Leskovec ego-Gplus
    #    corpus: 40 joined ego networks with shared circles.
    dataset = build_google_plus(seed=7)
    print(dataset)
    print()

    # 2. The paper's Question 1: are circles pronounced structures?
    #    Score every circle against a size-matched random-walk vertex set
    #    under the four scoring functions of the paper.
    result = circles_vs_random(dataset, seed=0)
    rows = [
        {"function": name, **values}
        for name, values in result.separation_summary().items()
    ]
    print(render_table(rows, title="Circles vs random sets (Fig. 5 summary)"))
    print()

    # 3. The headline signature: circles are internally dense but barely
    #    separated from the remaining network (conductance near 1).
    conductance = EmpiricalCDF(result.circle_scores.scores("conductance"))
    print(render_kv(
        {
            "circles with conductance > 0.9": f"{conductance.fraction_above(0.9):.1%}",
            "median circle conductance": round(conductance.median, 3),
            "paper": "~90% of circles above 0.9 (Fig. 6c)",
        },
        title="Selective sharing is less confined",
    ))


if __name__ == "__main__":
    main()
