"""Per-replicate seed derivation shared by every matched-set sampler.

The paper's experiments draw *many* replicates (one random set per circle,
one null graph per ensemble sample) from a single user-facing seed.
Threading one ``random.Random`` through the replicates sequentially would
make replicate ``i+1`` depend on every draw of replicate ``i`` — correct,
but impossible to replay in parallel.  Instead, every replicate owns an
independent child stream derived with :class:`numpy.random.SeedSequence`
(`spawn`), the standard collision-resistant way to split one seed into
many:

* the serial path iterates the children in order;
* the parallel path hands child ``i`` to whichever worker computes
  replicate ``i``;

and both produce byte-identical replicates because replicate ``i`` sees
exactly the same stream either way.  Any module that fans replicates out
must derive seeds here — passing a live RNG object across a process
boundary is flagged by lint rule ``REP105``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_child_seeds", "spawn_generators"]


def spawn_child_seeds(
    seed: int | None, count: int
) -> list[int | None]:
    """Derive ``count`` independent integer seeds from one user seed.

    Child ``i`` seeds replicate ``i``'s private ``random.Random`` (or
    ``default_rng``); the derivation is pure, so serial loops and parallel
    workers agree on every replicate's stream.  ``seed=None`` yields
    ``None`` children — each replicate then draws fresh OS entropy,
    matching the unseeded behaviour of a shared RNG.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if seed is None:
        return [None] * count
    children = np.random.SeedSequence(seed).spawn(count)
    return [
        int.from_bytes(
            child.generate_state(4, np.uint32).tobytes(), "little"
        )
        for child in children
    ]


def spawn_generators(
    seed: int | None, count: int
) -> list[np.random.Generator]:
    """Derive ``count`` independent numpy generators from one user seed.

    Like :func:`spawn_child_seeds` but for consumers that draw through the
    numpy ``Generator`` API (the null-model ensemble); each generator owns
    its replicate's entire stream, including any fallback draws.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]
