"""Tests of the individual scoring functions (paper eqs. 1-4 and the
Yang-Leskovec extensions) on hand-computable graphs."""

import math

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph
from repro.scoring.base import compute_group_stats
from repro.scoring.combined import (
    AverageOutDegreeFraction,
    Conductance,
    FlakeOutDegreeFraction,
    MaxOutDegreeFraction,
    NormalizedCut,
    Separability,
)
from repro.scoring.external import Expansion, RatioCut, ScaledRatioCut
from repro.scoring.internal import (
    AverageDegree,
    EdgesInside,
    FractionOverMedianDegree,
    InternalDensity,
    TriangleParticipationRatio,
)


def stats_for(graph, members, **kwargs):
    return compute_group_stats(graph, members, **kwargs)


class TestAverageDegree:
    def test_paper_formula(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3])
        assert AverageDegree()(stats) == pytest.approx(2 * 6 / 4)

    def test_single_vertex_zero(self, triangle_graph):
        assert AverageDegree()(stats_for(triangle_graph, [1])) == 0.0

    def test_directed_counts_internal_edges_once(self):
        graph = DiGraph([(1, 2), (2, 1), (3, 1)])
        stats = stats_for(graph, [1, 2])
        assert AverageDegree()(stats) == pytest.approx(2 * 2 / 2)


class TestInternalDensity:
    def test_clique_is_one(self, two_cliques_graph):
        assert InternalDensity()(stats_for(two_cliques_graph, [0, 1, 2, 3])) == 1.0

    def test_single_vertex_zero(self, triangle_graph):
        assert InternalDensity()(stats_for(triangle_graph, [4])) == 0.0

    def test_directed_normalizes_by_ordered_pairs(self):
        graph = DiGraph([(1, 2), (2, 1), (1, 3)])
        stats = stats_for(graph, [1, 2])
        assert InternalDensity()(stats) == pytest.approx(1.0)


class TestEdgesInside:
    def test_counts_m_C(self, two_cliques_graph):
        assert EdgesInside()(stats_for(two_cliques_graph, [4, 5, 6, 7])) == 6.0


class TestFOMD:
    def test_with_precomputed_median(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3], graph_median_degree=3.0)
        # internal degrees are all 3, never strictly above the median 3
        assert FractionOverMedianDegree()(stats) == 0.0

    def test_lower_median(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3], graph_median_degree=2.0)
        assert FractionOverMedianDegree()(stats) == 1.0

    def test_missing_median_raises(self, triangle_graph):
        # GroupStats no longer carries a graph reference, so FOMD cannot
        # recover the graph-wide median on demand; it must be precomputed
        # (AnalysisContext.median_degree does this once per run).
        stats = stats_for(triangle_graph, [1, 2, 3])
        with pytest.raises(ValueError, match="graph_median_degree"):
            FractionOverMedianDegree()(stats)


class TestTPR:
    def test_triangle_members_participate(self, triangle_graph):
        stats = stats_for(triangle_graph, [1, 2, 3])
        assert TriangleParticipationRatio()(stats) == 1.0

    def test_pendant_does_not(self, triangle_graph):
        stats = stats_for(triangle_graph, [1, 2, 3, 4])
        assert TriangleParticipationRatio()(stats) == pytest.approx(3 / 4)

    def test_no_triangles(self):
        graph = Graph([(1, 2), (2, 3)])
        stats = stats_for(graph, [1, 2, 3])
        assert TriangleParticipationRatio()(stats) == 0.0

    def test_directed_uses_skeleton(self):
        graph = DiGraph([(1, 2), (2, 3), (3, 1)])
        stats = stats_for(graph, [1, 2, 3])
        assert TriangleParticipationRatio()(stats) == 1.0

    def test_triangle_outside_group_does_not_count(self, triangle_graph):
        stats = stats_for(triangle_graph, [1, 2, 4])
        assert TriangleParticipationRatio()(stats) == 0.0


class TestRatioCut:
    def test_paper_formula(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3])
        assert RatioCut()(stats) == pytest.approx(1 / (4 * 4))

    def test_whole_graph_zero(self, triangle_graph):
        assert RatioCut()(stats_for(triangle_graph, [1, 2, 3, 4])) == 0.0

    def test_scaled_variant(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3])
        assert ScaledRatioCut()(stats) == pytest.approx(8 * 1 / (4 * 4))

    def test_ordering_preserved_by_scaling(self, two_cliques_graph, triangle_graph):
        clique_stats = stats_for(two_cliques_graph, [0, 1, 2, 3])
        triangle_stats = stats_for(triangle_graph, [1, 2])
        plain = RatioCut()
        scaled = ScaledRatioCut()
        assert (plain(clique_stats) < plain(triangle_stats)) == (
            scaled(clique_stats) / 8 < scaled(triangle_stats) / 4
        )


class TestExpansion:
    def test_boundary_per_member(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3])
        assert Expansion()(stats) == pytest.approx(1 / 4)


class TestConductance:
    def test_paper_formula(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3])
        assert Conductance()(stats) == pytest.approx(1 / (2 * 6 + 1))

    def test_isolated_group_zero(self):
        graph = Graph([(1, 2)])
        graph.add_node(3)
        assert Conductance()(stats_for(graph, [3])) == 0.0

    def test_star_center_alone_is_one(self):
        star = Graph([(0, i) for i in range(1, 5)])
        assert Conductance()(stats_for(star, [0])) == 1.0

    def test_bounded_between_zero_and_one(self, small_circles_dataset):
        graph = small_circles_dataset.graph
        function = Conductance()
        for group in small_circles_dataset.groups:
            members = [v for v in group.members if v in graph]
            if not members:
                continue
            value = function(compute_group_stats(graph, members))
            assert 0.0 <= value <= 1.0


class TestNormalizedCut:
    def test_adds_complement_term(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3])
        expected = 1 / (2 * 6 + 1) + 1 / (2 * (13 - 6) + 1)
        assert NormalizedCut()(stats) == pytest.approx(expected)

    def test_symmetric_for_balanced_split(self, two_cliques_graph):
        left = NormalizedCut()(stats_for(two_cliques_graph, [0, 1, 2, 3]))
        right = NormalizedCut()(stats_for(two_cliques_graph, [4, 5, 6, 7]))
        assert left == pytest.approx(right)


class TestODF:
    def test_max_odf(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3])
        # vertex 3 has degree 4 with 1 edge leaving
        assert MaxOutDegreeFraction()(stats) == pytest.approx(1 / 4)

    def test_avg_odf(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3])
        assert AverageOutDegreeFraction()(stats) == pytest.approx((0 + 0 + 0 + 0.25) / 4)

    def test_flake_odf(self, triangle_graph):
        # group {3, 4}: vertex 3 has internal 1 of degree 3 -> flake;
        # vertex 4 has internal 1 of degree 1 -> not flake.
        stats = stats_for(triangle_graph, [3, 4])
        assert FlakeOutDegreeFraction()(stats) == pytest.approx(0.5)

    def test_isolated_group_all_zero(self):
        graph = Graph([(1, 2)])
        graph.add_node(9)
        stats = stats_for(graph, [9])
        assert MaxOutDegreeFraction()(stats) == 0.0
        assert AverageOutDegreeFraction()(stats) == 0.0


class TestSeparability:
    def test_ratio(self, two_cliques_graph):
        stats = stats_for(two_cliques_graph, [0, 1, 2, 3])
        assert Separability()(stats) == pytest.approx(6.0)

    def test_no_boundary_with_edges_is_inf(self, triangle_graph):
        stats = stats_for(triangle_graph, [1, 2, 3, 4])
        assert math.isinf(Separability()(stats))

    def test_fully_isolated_zero(self):
        graph = Graph([(1, 2)])
        graph.add_node(5)
        assert Separability()(stats_for(graph, [5])) == 0.0
