"""Figure 5 — the four scoring functions on circles vs size-matched
random-walk vertex sets (the paper's Question 1).

Paper claims reproduced, per panel:

* (a) Average Degree — circles score visibly higher; distributions have
  similar shape (quantitative, not qualitative, separation);
* (b) Ratio Cut — the random sets concentrate around a peak, and the score
  of more than 70 % of the circles is lower than for the random sets;
* (c) Conductance — circles score *lower* (better separated) than random
  walk sets, though both are high in the dense corpus;
* (d) Modularity — random sets score near the null expectation, while a
  majority of circles deviate upward.
"""

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.experiment import circles_vs_random
from repro.analysis.report import render_cdf_panel, render_table


def test_fig5_circles_vs_random(benchmark, gplus):
    result = benchmark.pedantic(
        lambda: circles_vs_random(gplus, seed=0), rounds=1, iterations=1
    )
    summary = result.separation_summary()

    print()
    for name in result.function_names():
        circles, randoms = result.cdf_pair(name)
        print(render_cdf_panel(
            {"circles": circles, "random": randoms}, title=f"Fig. 5 — {name}"
        ))
        print()
    rows = [{"function": name, **values} for name, values in summary.items()]
    print(render_table(rows, title="Separation summary"))
    for name, values in summary.items():
        benchmark.extra_info[name] = values

    # (a) Average Degree: circles clearly higher.
    average_degree = summary["average_degree"]
    assert average_degree["circle_median"] > 1.2 * average_degree["random_median"]

    # (b) Ratio Cut: >70% of circles below the random sets' median, and the
    # random sets are more concentrated (peaked) than the circles.
    ratio_cut = summary["ratio_cut"]
    assert ratio_cut["circles_below_random_median"] > 0.7
    circle_cdf, random_cdf = result.cdf_pair("ratio_cut")
    circle_iqr = circle_cdf.quantile(0.75) - circle_cdf.quantile(0.25)
    random_iqr = random_cdf.quantile(0.75) - random_cdf.quantile(0.25)
    assert random_iqr < circle_iqr * 1.5

    # (c) Conductance: circles lower than random sets.
    conductance = summary["conductance"]
    assert conductance["circle_median"] < conductance["random_median"]
    assert conductance["circles_below_random_median"] > 0.6

    # (d) Modularity: circles deviate from the null, random sets sit lower.
    modularity = summary["modularity"]
    assert modularity["circle_median"] > modularity["random_median"]
    circle_mod, random_mod = result.cdf_pair("modularity")
    # Over half the circles exceed the typical random-set score — the
    # "more than 50% show a significant deviation" claim.
    assert circle_mod.fraction_above(random_mod.median) > 0.5
    # And the circle distribution reaches well past the random maximum
    # regime (the smooth long tail of Fig. 5d).
    assert circle_mod.quantile(0.95) > random_mod.quantile(0.95)


def test_fig5_long_tails(gplus):
    """All circle distributions admit smooth long tails — the Fang et al.
    celebrity circles produce low-scoring outliers."""
    result = circles_vs_random(gplus, seed=1)
    circles, __ = result.cdf_pair("average_degree")
    # Tail spread: the top decile spans far beyond the median.
    assert circles.quantile(0.95) > 1.5 * circles.median
    # Celebrity circles: a low-connectivity tail exists.
    assert circles.quantile(0.05) < 0.7 * circles.median
