"""Reproduce the paper's Figure 3: degree-distribution model selection.

The paper stresses (citing Clauset-Shalizi-Newman) that eyeballing a
log-log plot is not evidence of a power law.  This example runs the full
CSN machinery on two corpora that *look* similar on a log-log plot but are
statistically distinct:

* the ego-joined Google+ corpus -> log-normal in-degree;
* the BFS-crawl reference        -> power-law in-degree.

Run::

    python examples/degree_distribution.py
"""

import numpy as np

from repro import best_fit, build_google_plus, build_magno_reference, render_table
from repro.algorithms.degrees import degree_histogram, in_degree_sequence


def ascii_loglog(histogram: dict[int, int], *, width: int = 58, height: int = 12) -> str:
    """A minimal log-log scatter of a degree histogram."""
    degrees = np.array([k for k in histogram if k > 0], dtype=float)
    counts = np.array([histogram[int(k)] for k in degrees], dtype=float)
    x = np.log10(degrees)
    y = np.log10(counts)
    grid = [[" "] * width for _ in range(height)]
    x_span = max(x.max() - x.min(), 1e-9)
    y_span = max(y.max() - y.min(), 1e-9)
    for xi, yi in zip(x, y):
        col = int((xi - x.min()) / x_span * (width - 1))
        row = height - 1 - int((yi - y.min()) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"log10(degree): [{x.min():.1f}, {x.max():.1f}]  "
                 f"log10(count): [{y.min():.1f}, {y.max():.1f}]")
    return "\n".join(lines)


def analyze(name: str, graph) -> dict:
    sequence = in_degree_sequence(graph)
    positive = sequence[sequence >= 1]
    print(f"=== {name} ===")
    print(ascii_loglog(degree_histogram(positive)))
    selection = best_fit(positive, xmin=int(positive.min()))
    summary = selection.summary()
    comparisons = summary.pop("comparisons")
    print(f"best model: {summary['best']}  params: {summary['params']}")
    print(render_table(comparisons, title="Vuong likelihood-ratio tests"))
    print()
    return summary


def main() -> None:
    gplus = analyze("Google+ (ego-joined)", build_google_plus().graph)
    magno = analyze("BFS-crawl reference", build_magno_reference().graph)
    print(
        "Both scatters look vaguely straight on a log-log plot, but the "
        f"likelihood machinery separates them: {gplus['best']} vs "
        f"{magno['best']} — the paper's Fig. 3 point."
    )


if __name__ == "__main__":
    main()
