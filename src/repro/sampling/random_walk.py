"""The paper's random-walk vertex-set sampler (section V-A).

To test whether circles are pronounced structures, the paper scores each
circle against a random vertex set *of the same size*, sampled by a random
walk: start at a random vertex, repeatedly move to a uniformly random
neighbour, collecting distinct vertices; restart from a fresh random vertex
whenever no new neighbour is available.  Random walks give an unbiased,
widely connected selection of the sub-graph (Lu et al., WWW'14).
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence

from repro.exceptions import SamplingError
from repro.graph.convert import stable_sorted
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph

Node = Hashable

__all__ = ["random_walk_set", "matched_random_sets"]


def _neighbor_map(graph: Graph | DiGraph):
    """Direction-ignoring neighbour accessor over live internal sets."""
    if graph.is_directed:
        succ = graph._succ  # noqa: SLF001
        pred = graph._pred  # noqa: SLF001
        return lambda node: succ[node] | pred[node]
    adj = graph._adj  # noqa: SLF001
    return lambda node: adj[node]


def random_walk_set(
    graph: Graph | DiGraph,
    size: int,
    *,
    seed: int | random.Random | None = None,
    max_steps_factor: int = 200,
) -> set[Node]:
    """Sample ``size`` distinct vertices by random walk with restarts.

    Walks ignore edge direction (the paper samples the social graph as a
    connectivity structure).  Raises
    :class:`~repro.exceptions.SamplingError` when the graph has fewer than
    ``size`` vertices or the step budget (``max_steps_factor * size``) is
    exhausted — which only happens on pathologically fragmented graphs.
    """
    if size <= 0:
        raise ValueError("sample size must be positive")
    nodes = list(graph.nodes)
    if len(nodes) < size:
        raise SamplingError(
            f"graph has {len(nodes)} vertices, cannot sample {size}"
        )
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    neighbors = _neighbor_map(graph)
    collected: set[Node] = set()
    current = rng.choice(nodes)
    collected.add(current)
    steps = 0
    budget = max_steps_factor * size
    while len(collected) < size:
        steps += 1
        if steps > budget:
            raise SamplingError(
                f"random walk exhausted {budget} steps collecting "
                f"{len(collected)}/{size} vertices"
            )
        fresh = neighbors(current) - collected
        if not fresh:
            # "The walk is restarted whenever no new neighbour is available."
            current = rng.choice(nodes)
            collected.add(current)
            continue
        # stable_sorted: raw set order is PYTHONHASHSEED-dependent and
        # would leak into the sample across interpreter runs.
        current = rng.choice(stable_sorted(fresh))
        collected.add(current)
    return collected


def matched_random_sets(
    graph: Graph | DiGraph,
    sizes: Sequence[int],
    *,
    seed: int | None = None,
    max_steps_factor: int = 200,
) -> list[set[Node]]:
    """One random-walk vertex set per entry of ``sizes``.

    This is the baseline of the paper's Fig. 5: for every circle, a random
    set of exactly the circle's size.  Each replicate owns an independent
    child stream of ``seed`` (:func:`repro.sampling.seeds.spawn_child_seeds`),
    so the CSR-native and parallel paths replay these draws exactly.
    """
    from repro.sampling.seeds import spawn_child_seeds

    child_seeds = spawn_child_seeds(seed, len(sizes))
    return [
        random_walk_set(
            graph, size, seed=child, max_steps_factor=max_steps_factor
        )
        for size, child in zip(sizes, child_seeds)
    ]
