"""Flow-sensitive dataflow core for the lint engine.

The PR-1 linter was a stack of stateless per-statement AST visitors; the
REP1xx/REP2xx rule families need to reason about *how values move*: which
variable holds an RNG, whether a list's ordering descends from a ``set``,
whether a graph has already been frozen into an
:class:`~repro.engine.AnalysisContext` by the time a mutating method runs.
This module provides the three layers those rules share:

* **Scopes / symbol tables** — :func:`build_scope_tree` resolves every
  name binding per function (parameters, assignments, imports,
  comprehension targets, ``global`` / ``nonlocal`` redirections) so rules
  never confuse a shadowing local with an outer binding.
* **CFG + def-use chains** — :class:`ControlFlowGraph` turns a function
  body into basic blocks with branch/loop edges;
  :class:`DefUseChains` computes reaching definitions over it, and
  :meth:`ControlFlowGraph.reaches` answers the happens-before questions
  REP201/REP202 need ("does this freeze precede that mutation on some
  path, with no rebinding of the base symbol in between?").
* **Origin tagging** — :class:`FunctionAnalysis` runs a small abstract
  interpretation over the CFG, tagging values of interest:

  ============  ========================================================
  ``rng``       ``random.Random`` / ``numpy.random.Generator`` values
  ``graph``     :class:`~repro.graph.Graph` / ``DiGraph`` values
  ``dataset``   :class:`~repro.data.datasets.Dataset` values
  ``frozen``    ``AnalysisContext`` / ``CSRGraph`` snapshots
  ``unordered`` ordering descended from ``set``/``dict`` iteration and
                not yet normalized through ``convert.stable_sorted``
  ============  ========================================================

The analysis is intraprocedural and deliberately biased toward *no false
positives*: unknown calls clear tags, annotations seed them, and the only
sanctioned taint-clearing normalizer for ``unordered`` is
:func:`repro.graph.convert.stable_sorted` (plain ``sorted`` keeps the
tag — it raises ``TypeError`` on mixed-type node labels, which is exactly
why ``stable_sorted`` exists).

Use :func:`analyze_module` as the entry point; results are memoized on
the AST object so the per-file cost is paid once across all flow rules.
"""

from __future__ import annotations

import ast
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.devtools._base import _MATERIALIZERS

__all__ = [
    "Scope",
    "Symbol",
    "build_scope_tree",
    "BasicBlock",
    "ControlFlowGraph",
    "DefUseChains",
    "FunctionAnalysis",
    "ModuleInfo",
    "ModuleAnalysis",
    "analyze_module",
    "analyze_source",
    "source_digest",
    "dotted_path",
    "root_name",
]

# --------------------------------------------------------------------------
# Scopes and symbol tables
# --------------------------------------------------------------------------

_SCOPE_NODES = (
    ast.Module,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


@dataclass
class Symbol:
    """One name within one scope, with every AST node that binds it."""

    name: str
    scope: "Scope"
    bindings: list[ast.AST] = field(default_factory=list)
    is_param: bool = False


@dataclass
class Scope:
    """A lexical scope: module, function, lambda, class or comprehension."""

    node: ast.AST
    parent: "Scope | None"
    kind: str  # "module" | "function" | "class" | "comprehension"
    symbols: dict[str, Symbol] = field(default_factory=dict)
    globals_: set[str] = field(default_factory=set)
    nonlocals_: set[str] = field(default_factory=set)
    children: list["Scope"] = field(default_factory=list)

    def bind(self, name: str, node: ast.AST, *, is_param: bool = False) -> Symbol:
        """Record ``node`` as a binding of ``name``, honouring ``global``
        and ``nonlocal`` redirections declared in this scope."""
        if name in self.globals_:
            return self.module_scope().bind(name, node)
        if name in self.nonlocals_:
            outer = self._nearest_function_ancestor()
            if outer is not None:
                return outer.bind(name, node)
        symbol = self.symbols.get(name)
        if symbol is None:
            symbol = Symbol(name=name, scope=self)
            self.symbols[name] = symbol
        symbol.bindings.append(node)
        symbol.is_param = symbol.is_param or is_param
        return symbol

    def resolve(self, name: str) -> Symbol | None:
        """Lexical lookup: this scope, then enclosing function scopes,
        then the module scope.  Class scopes are skipped for lookups
        originating in nested functions, matching Python semantics."""
        if name in self.globals_:
            return self.module_scope().symbols.get(name)
        scope: Scope | None = self
        first = True
        while scope is not None:
            if scope.kind != "class" or first:
                symbol = scope.symbols.get(name)
                if symbol is not None:
                    return symbol
            first = False
            scope = scope.parent
        return None

    def module_scope(self) -> "Scope":
        scope = self
        while scope.parent is not None:
            scope = scope.parent
        return scope

    def _nearest_function_ancestor(self) -> "Scope | None":
        scope = self.parent
        while scope is not None and scope.kind != "function":
            scope = scope.parent
        return scope


def _bind_target(scope: Scope, target: ast.AST, node: ast.AST) -> None:
    """Bind every plain name inside an assignment target."""
    if isinstance(target, ast.Name):
        scope.bind(target.id, node)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(scope, element, node)
    elif isinstance(target, ast.Starred):
        _bind_target(scope, target.value, node)
    # Attribute / Subscript targets bind no local name.


class _ScopeBuilder(ast.NodeVisitor):
    def __init__(self, root: Scope) -> None:
        self.scope = root

    def _enter(self, node: ast.AST, kind: str) -> Scope:
        child = Scope(node=node, parent=self.scope, kind=kind)
        self.scope.children.append(child)
        return child

    def _visit_in(self, scope: Scope, nodes: list[ast.AST]) -> None:
        saved, self.scope = self.scope, scope
        for sub in nodes:
            self.visit(sub)
        self.scope = saved

    # -- scope-introducing nodes ------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.scope.bind(node.name, node)
        for decorator in node.decorator_list:
            self.visit(decorator)
        inner = self._enter(node, "function")
        args = node.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            inner.bind(arg.arg, arg, is_param=True)
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None:
                self.visit(default)
        self._visit_in(inner, list(node.body))

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        inner = self._enter(node, "function")
        args = node.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            inner.bind(arg.arg, arg, is_param=True)
        self._visit_in(inner, [node.body])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.bind(node.name, node)
        for base in (*node.bases, *node.keywords, *node.decorator_list):
            self.visit(base)
        inner = self._enter(node, "class")
        self._visit_in(inner, list(node.body))

    def _visit_comprehension(self, node: ast.AST) -> None:
        inner = self._enter(node, "comprehension")
        for generator in node.generators:  # type: ignore[attr-defined]
            # The first iterable evaluates in the enclosing scope.
            self.visit(generator.iter)
            _bind_target(inner, generator.target, generator)
            self._visit_in(inner, list(generator.ifs))
        if isinstance(node, ast.DictComp):
            self._visit_in(inner, [node.key, node.value])
        else:
            self._visit_in(inner, [node.elt])  # type: ignore[attr-defined]

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- binding statements ------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.scope.globals_.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.scope.nonlocals_.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            _bind_target(self.scope, target, node)
            self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        _bind_target(self.scope, node.target, node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        _bind_target(self.scope, node.target, node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self.visit(node.value)
        _bind_target(self.scope, node.target, node)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        _bind_target(self.scope, node.target, node)
        for sub in (*node.body, *node.orelse):
            self.visit(sub)

    visit_AsyncFor = visit_For

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                _bind_target(self.scope, item.optional_vars, node)
        for sub in node.body:
            self.visit(sub)

    visit_AsyncWith = visit_With

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.scope.bind(node.name, node)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.scope.bind(name, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name != "*":
                self.scope.bind(alias.asname or alias.name, node)


def build_scope_tree(tree: ast.Module) -> Scope:
    """Build the scope tree of a module; the returned scope is the module
    scope, with nested function/class/comprehension scopes as children."""
    root = Scope(node=tree, parent=None, kind="module")
    builder = _ScopeBuilder(root)
    for stmt in tree.body:
        builder.visit(stmt)
    return root


def iter_scopes(scope: Scope):
    """Depth-first iteration over a scope tree."""
    yield scope
    for child in scope.children:
        yield from iter_scopes(child)


# --------------------------------------------------------------------------
# Control-flow graph
# --------------------------------------------------------------------------


@dataclass
class BasicBlock:
    """A straight-line run of statements with branch edges at the end."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)


class ControlFlowGraph:
    """A small statement-level CFG for one function body.

    Handles ``if``/``for``/``while``/``try``/``with`` plus
    ``break``/``continue``/``return``/``raise``.  Compound statements are
    *headers*: the ``if`` statement itself terminates its block (its test
    evaluates there) and its body/orelse become successor blocks.  This is
    enough structure for reaching-definitions and happens-before queries;
    it makes no claims about exceptional edges beyond ``try`` handlers.
    """

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = [BasicBlock(0)]
        self.entry = 0
        #: id(stmt) -> (block index, position in block)
        self.location: dict[int, tuple[int, int]] = {}

    # -- construction ------------------------------------------------------

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].successors:
            self.blocks[src].successors.append(dst)
            self.blocks[dst].predecessors.append(src)

    @classmethod
    def from_statements(cls, body: list[ast.stmt]) -> "ControlFlowGraph":
        cfg = cls()
        exits = cfg._build(body, cfg.entry, loop=None)
        terminal = cfg._new_block()
        for block in exits:
            cfg._edge(block, terminal.index)
        cfg.exit = terminal.index
        return cfg

    @classmethod
    def from_function(
        cls, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> "ControlFlowGraph":
        return cls.from_statements(list(fn.body))

    def _append(self, block: int, stmt: ast.stmt) -> None:
        position = len(self.blocks[block].statements)
        self.blocks[block].statements.append(stmt)
        self.location[id(stmt)] = (block, position)

    def _build(
        self,
        body: list[ast.stmt],
        current: int,
        loop: tuple[int, list[int]] | None,
    ) -> list[int]:
        """Thread ``body`` starting in block ``current``; returns the open
        exit blocks.  ``loop`` is ``(header_block, break_exits)``."""
        open_blocks = [current]
        for stmt in body:
            if not open_blocks:
                break  # unreachable code after return/raise/break
            if len(open_blocks) > 1:
                merge = self._new_block()
                for block in open_blocks:
                    self._edge(block, merge.index)
                open_blocks = [merge.index]
            block = open_blocks[0]
            if isinstance(stmt, ast.If):
                self._append(block, stmt)
                then_block = self._new_block()
                self._edge(block, then_block.index)
                then_exits = self._build(stmt.body, then_block.index, loop)
                if stmt.orelse:
                    else_block = self._new_block()
                    self._edge(block, else_block.index)
                    else_exits = self._build(stmt.orelse, else_block.index, loop)
                else:
                    else_exits = [block]
                open_blocks = then_exits + else_exits
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._append(block, stmt)
                header = self._new_block()
                self._edge(block, header.index)
                body_block = self._new_block()
                self._edge(header.index, body_block.index)
                breaks: list[int] = []
                body_exits = self._build(
                    stmt.body, body_block.index, (header.index, breaks)
                )
                for exit_block in body_exits:
                    self._edge(exit_block, header.index)  # loop back-edge
                if stmt.orelse:
                    else_block = self._new_block()
                    self._edge(header.index, else_block.index)
                    else_exits = self._build(stmt.orelse, else_block.index, loop)
                    open_blocks = else_exits + breaks
                else:
                    open_blocks = [header.index] + breaks
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                self._append(block, stmt)
                try_block = self._new_block()
                self._edge(block, try_block.index)
                try_exits = self._build(stmt.body, try_block.index, loop)
                handler_exits: list[int] = []
                for handler in stmt.handlers:
                    handler_block = self._new_block()
                    # Any statement in the try may raise: edge from entry.
                    self._edge(try_block.index, handler_block.index)
                    handler_exits.extend(
                        self._build(handler.body, handler_block.index, loop)
                    )
                if stmt.orelse:
                    else_block = self._new_block()
                    for exit_block in try_exits:
                        self._edge(exit_block, else_block.index)
                    try_exits = self._build(stmt.orelse, else_block.index, loop)
                open_blocks = try_exits + handler_exits
                if stmt.finalbody:
                    final_block = self._new_block()
                    for exit_block in open_blocks:
                        self._edge(exit_block, final_block.index)
                    open_blocks = self._build(stmt.finalbody, final_block.index, loop)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._append(block, stmt)
                inner = self._new_block()
                self._edge(block, inner.index)
                open_blocks = self._build(stmt.body, inner.index, loop)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                self._append(block, stmt)
                open_blocks = []
            elif isinstance(stmt, ast.Break):
                self._append(block, stmt)
                if loop is not None:
                    loop[1].append(block)
                open_blocks = []
            elif isinstance(stmt, ast.Continue):
                self._append(block, stmt)
                if loop is not None:
                    self._edge(block, loop[0])
                open_blocks = []
            else:
                self._append(block, stmt)
                open_blocks = [block]
        return open_blocks

    # -- queries -----------------------------------------------------------

    def statement_order(self) -> list[ast.stmt]:
        """Statements in block order (stable, deterministic)."""
        out: list[ast.stmt] = []
        for block in self.blocks:
            out.extend(block.statements)
        return out

    def reaches(
        self,
        source: ast.stmt,
        target: ast.stmt,
        *,
        killed_by: "set[int] | None" = None,
    ) -> bool:
        """True when control can flow from just *after* ``source`` to
        ``target``.  ``killed_by`` is an optional set of ``id(stmt)``
        barriers: paths passing through any of them do not count (used to
        model rebinding of a tracked symbol)."""
        if id(source) not in self.location or id(target) not in self.location:
            return False
        killed = killed_by or set()
        src_block, src_pos = self.location[id(source)]
        dst_block, dst_pos = self.location[id(target)]
        # Same block: simple position comparison along the fallthrough.
        if src_block == dst_block and dst_pos > src_pos:
            between = self.blocks[src_block].statements[src_pos + 1 : dst_pos]
            return not any(id(stmt) in killed for stmt in between)

        def block_clear(index: int, start: int, stop: int | None) -> bool:
            segment = self.blocks[index].statements[start:stop]
            return not any(id(stmt) in killed for stmt in segment)

        # BFS over blocks, starting after `source`.
        if not block_clear(src_block, src_pos + 1, None):
            start_successors: list[int] = []
        else:
            start_successors = self.blocks[src_block].successors
        seen = set()
        frontier = list(start_successors)
        while frontier:
            index = frontier.pop()
            if index in seen:
                continue
            seen.add(index)
            if index == dst_block:
                if block_clear(dst_block, 0, dst_pos):
                    return True
                continue  # target block reached but barrier before target
            if block_clear(index, 0, None):
                frontier.extend(self.blocks[index].successors)
        # Loop case: source and target share a block but target comes
        # first textually — reachable through a back-edge.
        if src_block == dst_block and dst_pos <= src_pos and src_block in seen:
            return block_clear(dst_block, 0, dst_pos)
        return False


# --------------------------------------------------------------------------
# Def-use chains (reaching definitions)
# --------------------------------------------------------------------------


def _statement_defs(stmt: ast.stmt) -> set[str]:
    """Names (re)bound by ``stmt`` itself, ignoring nested scopes."""
    names: set[str] = set()

    def collect(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect(element)
        elif isinstance(target, ast.Starred):
            collect(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            collect(target)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                collect(item.optional_vars)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            if alias.name != "*":
                names.add(alias.asname or alias.name.split(".")[0])
    # Walrus targets anywhere inside the statement's expressions.
    for sub in ast.walk(stmt):
        if isinstance(sub, ast.NamedExpr):
            collect(sub.target)
    return names


class DefUseChains:
    """Reaching definitions over a :class:`ControlFlowGraph`.

    ``defs_reaching(use)`` maps a :class:`ast.Name` load to the set of
    statements whose binding of that name can reach it;
    ``uses_of(def_stmt)`` is the inverse.  Definitions are tracked at
    statement granularity (good enough for rule queries; sub-statement
    ordering inside one simple statement is not modelled).
    """

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self._defs_by_name: dict[str, list[ast.stmt]] = {}
        for stmt in cfg.statement_order():
            for name in _statement_defs(stmt):
                self._defs_by_name.setdefault(name, []).append(stmt)
        self._in: dict[int, dict[str, set[int]]] = {}
        self._compute()
        self._use_map: dict[int, set[ast.stmt]] = {}
        self._uses_of: dict[int, list[ast.Name]] = {}
        self._link_uses()

    def _compute(self) -> None:
        blocks = self.cfg.blocks
        in_sets: dict[int, dict[str, set[int]]] = {
            block.index: {} for block in blocks
        }
        out_sets: dict[int, dict[str, set[int]]] = {
            block.index: {} for block in blocks
        }
        changed = True
        while changed:
            changed = False
            for block in blocks:
                merged: dict[str, set[int]] = {}
                for pred in block.predecessors:
                    for name, defs in out_sets[pred].items():
                        merged.setdefault(name, set()).update(defs)
                in_sets[block.index] = merged
                current = {name: set(defs) for name, defs in merged.items()}
                for stmt in block.statements:
                    killed = _statement_defs(stmt)
                    for name in killed:
                        current[name] = {id(stmt)}
                if current != out_sets[block.index]:
                    out_sets[block.index] = current
                    changed = True
        self._in = in_sets

    def _link_uses(self) -> None:
        id_to_stmt = {
            id(stmt): stmt for stmt in self.cfg.statement_order()
        }
        for block in self.cfg.blocks:
            live = {
                name: set(defs)
                for name, defs in self._in.get(block.index, {}).items()
            }
            for stmt in block.statements:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                        reaching = {
                            id_to_stmt[d]
                            for d in live.get(sub.id, set())
                            if d in id_to_stmt
                        }
                        self._use_map[id(sub)] = reaching
                        for def_stmt in reaching:
                            self._uses_of.setdefault(id(def_stmt), []).append(sub)
                for name in _statement_defs(stmt):
                    live[name] = {id(stmt)}

    def defs_reaching(self, use: ast.Name) -> set[ast.stmt]:
        return self._use_map.get(id(use), set())

    def uses_of(self, def_stmt: ast.stmt) -> list[ast.Name]:
        return self._uses_of.get(id(def_stmt), [])

    def definitions(self, name: str) -> list[ast.stmt]:
        return list(self._defs_by_name.get(name, []))


# --------------------------------------------------------------------------
# Origin tagging
# --------------------------------------------------------------------------

RNG = "rng"
GRAPH = "graph"
DATASET = "dataset"
FROZEN = "frozen"
UNORDERED = "unordered"

_EMPTY: frozenset[str] = frozenset()

#: Constructors whose result is a set/dict (insertion/hash-ordered).
_UNORDERED_CONSTRUCTORS = frozenset(
    {"set", "frozenset", "dict", "Counter", "defaultdict", "OrderedDict"}
)

#: Graph freeze sites: constructing any of these snapshots a graph.
_FREEZE_CONSTRUCTORS = frozenset({"AnalysisContext", "CSRGraph", "freeze_directed"})

#: Annotation identifiers that seed origin tags on parameters.
_ANNOTATION_TAGS = {
    "Graph": GRAPH,
    "DiGraph": GRAPH,
    "Dataset": DATASET,
    "AnalysisContext": FROZEN,
    "CSRGraph": FROZEN,
    "Random": RNG,
    "Generator": RNG,
    "set": UNORDERED,
    "frozenset": UNORDERED,
    "dict": UNORDERED,
    "Counter": UNORDERED,
}


def dotted_path(expr: ast.expr) -> str | None:
    """Render ``a.b.c`` chains as a string; None for anything else."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(expr: ast.expr) -> str | None:
    """The base name of a ``a.b.c`` chain (``"a"``), or None."""
    path = dotted_path(expr)
    return path.split(".")[0] if path else None


@dataclass(frozen=True)
class ModuleInfo:
    """Module-level facts the per-function analyses share."""

    random_aliases: frozenset[str]
    numpy_aliases: frozenset[str]
    stable_sorted_names: frozenset[str]
    module_rng_names: frozenset[str]
    frozen_dataclasses: frozenset[str]


def _collect_module_info(tree: ast.Module) -> ModuleInfo:
    random_aliases: set[str] = set()
    numpy_aliases: set[str] = set()
    stable_names: set[str] = set()
    frozen_dataclasses: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or "random")
                elif alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "numpy.random" and alias.asname:
                    numpy_aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "stable_sorted":
                    stable_names.add(alias.asname or "stable_sorted")
        elif isinstance(node, ast.ClassDef):
            for decorator in node.decorator_list:
                if (
                    isinstance(decorator, ast.Call)
                    and getattr(decorator.func, "id", getattr(decorator.func, "attr", None))
                    == "dataclass"
                    and any(
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in decorator.keywords
                    )
                ):
                    frozen_dataclasses.add(node.name)
    stable_names.add("stable_sorted")  # canonical name always recognized

    info = ModuleInfo(
        random_aliases=frozenset(random_aliases),
        numpy_aliases=frozenset(numpy_aliases),
        stable_sorted_names=frozenset(stable_names),
        module_rng_names=frozenset(),
        frozen_dataclasses=frozenset(frozen_dataclasses),
    )
    # Second pass: module-level names bound to RNG constructors.
    module_rng: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and stmt.value is not None:
            if RNG in _expression_tags(stmt.value, {}, info):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        module_rng.add(target.id)
    return ModuleInfo(
        random_aliases=info.random_aliases,
        numpy_aliases=info.numpy_aliases,
        stable_sorted_names=info.stable_sorted_names,
        module_rng_names=frozenset(module_rng),
        frozen_dataclasses=info.frozen_dataclasses,
    )


def _annotation_tags(annotation: ast.expr | None) -> frozenset[str]:
    if annotation is None:
        return _EMPTY
    tags: set[str] = set()
    for sub in ast.walk(annotation):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations: cheap token scan.
            for token, tag in _ANNOTATION_TAGS.items():
                if token in sub.value:
                    tags.add(tag)
        if name in _ANNOTATION_TAGS:
            tags.add(_ANNOTATION_TAGS[name])
    # ``X | AnalysisContext`` union parameters accept pre-frozen values;
    # the graph tag still applies (callers may pass a raw graph).
    return frozenset(tags)


def _is_rng_constructor(node: ast.Call, info: ModuleInfo) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in {"Random", "SystemRandom"} and isinstance(
            func.value, ast.Name
        ):
            return func.value.id in info.random_aliases
        if func.attr == "default_rng":
            inner = func.value
            if isinstance(inner, ast.Attribute) and inner.attr == "random":
                return (
                    isinstance(inner.value, ast.Name)
                    and inner.value.id in info.numpy_aliases
                )
            if isinstance(inner, ast.Name):
                return inner.id in info.numpy_aliases
    if isinstance(func, ast.Name) and func.id in {"Random", "default_rng"}:
        return True  # ``from random import Random`` style
    return False


def _call_name(node: ast.Call) -> str | None:
    """Trailing callable name: ``f(...)`` -> f, ``m.f(...)`` -> f."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _expression_tags(
    expr: ast.expr,
    env: dict[str, frozenset[str]],
    info: ModuleInfo,
) -> frozenset[str]:
    """Origin tags of ``expr`` under environment ``env``."""
    if isinstance(expr, ast.Name):
        if expr.id in info.module_rng_names:
            return frozenset({RNG})
        return env.get(expr.id, _EMPTY)
    if isinstance(expr, (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)):
        return frozenset({UNORDERED})
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
        # Ordering descends from the first generator's iterable.
        first = expr.generators[0].iter
        if UNORDERED in _expression_tags(first, env, info):
            return frozenset({UNORDERED})
        return _EMPTY
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        left = _expression_tags(expr.left, env, info)
        right = _expression_tags(expr.right, env, info)
        if UNORDERED in left or UNORDERED in right:
            return frozenset({UNORDERED})
        return _EMPTY
    if isinstance(expr, ast.IfExp):
        return _expression_tags(expr.body, env, info) | _expression_tags(
            expr.orelse, env, info
        )
    if isinstance(expr, ast.BoolOp):
        tags: frozenset[str] = _EMPTY
        for value in expr.values:
            tags = tags | _expression_tags(value, env, info)
        return tags
    if isinstance(expr, ast.Starred):
        return _expression_tags(expr.value, env, info)
    if isinstance(expr, ast.Call):
        name = _call_name(expr)
        # The one sanctioned normalizer clears the unordered taint.
        if name in info.stable_sorted_names:
            return _EMPTY
        if _is_rng_constructor(expr, info):
            return frozenset({RNG})
        if name in _UNORDERED_CONSTRUCTORS:
            if name in {"set", "frozenset"}:
                return frozenset({UNORDERED})
            # dict()/Counter()/defaultdict(): unordered for iteration
            # purposes (hash/insertion order), same as displays.
            return frozenset({UNORDERED})
        if name in _FREEZE_CONSTRUCTORS or (
            name == "ensure"
            and isinstance(expr.func, ast.Attribute)
            and root_name(expr.func.value) in _FREEZE_CONSTRUCTORS
        ):
            return frozenset({FROZEN})
        if name in {"Graph", "DiGraph", "to_undirected", "to_directed"}:
            return frozenset({GRAPH})
        if name in {"keys", "values", "items"} and not expr.args:
            return frozenset({UNORDERED})
        # ``sorted`` is *not* mixed-type safe; it preserves the taint so
        # REP101 can point at ``stable_sorted`` instead.
        if name == "sorted" and expr.args:
            inner = _expression_tags(expr.args[0], env, info)
            return frozenset({UNORDERED}) if UNORDERED in inner else _EMPTY
        if name in _MATERIALIZERS and expr.args:
            # list()/tuple() preserve their argument's ordering origin.
            inner = _expression_tags(expr.args[0], env, info)
            if name in {"set", "frozenset", "dict"}:
                return frozenset({UNORDERED})
            return frozenset({UNORDERED}) if UNORDERED in inner else _EMPTY
        return _EMPTY  # unknown call: conservative, no tags
    if isinstance(expr, ast.Attribute):
        # ``x.attr`` reads keep no tags except the dataset.graph idiom.
        base = _expression_tags(expr.value, env, info)
        if expr.attr == "graph" and DATASET in base:
            return frozenset({GRAPH})
        return _EMPTY
    return _EMPTY


class FunctionAnalysis:
    """Scope + CFG + def-use + origin environments for one function."""

    def __init__(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        scope: Scope,
        info: ModuleInfo,
    ) -> None:
        self.function = fn
        self.scope = scope
        self.info = info
        self.cfg = ControlFlowGraph.from_function(fn)
        self.defuse = DefUseChains(self.cfg)
        self._env_in: dict[int, dict[str, frozenset[str]]] = {}
        self._compute_origins()

    # -- public queries ----------------------------------------------------

    def env_before(self, stmt: ast.stmt) -> dict[str, frozenset[str]]:
        """Origin environment at the program point just before ``stmt``."""
        return self._env_in.get(id(stmt), self._initial_env())

    def tags(self, expr: ast.expr, stmt: ast.stmt) -> frozenset[str]:
        """Origin tags of ``expr`` as evaluated inside ``stmt``."""
        return _expression_tags(expr, self.env_before(stmt), self.info)

    # -- fixpoint ----------------------------------------------------------

    def _initial_env(self) -> dict[str, frozenset[str]]:
        env: dict[str, frozenset[str]] = {}
        args = self.function.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            tags = _annotation_tags(arg.annotation)
            if not tags and arg.arg in {"rng", "random_state"}:
                tags = frozenset({RNG})
            if tags:
                env[arg.arg] = tags
        return env

    def _transfer(
        self, stmt: ast.stmt, env: dict[str, frozenset[str]]
    ) -> dict[str, frozenset[str]]:
        env = dict(env)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) >= 1:
            tags = _expression_tags(stmt.value, env, self.info)
            for target in stmt.targets:
                self._assign_target(target, stmt.value, tags, env)
        elif isinstance(stmt, ast.AnnAssign):
            tags = _annotation_tags(stmt.annotation)
            if stmt.value is not None:
                tags = tags | _expression_tags(stmt.value, env, self.info)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = tags
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                existing = env.get(stmt.target.id, _EMPTY)
                env[stmt.target.id] = existing | _expression_tags(
                    stmt.value, env, self.info
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Loop targets: elements of the iterable; ordering taint is a
            # property of sequences, so element bindings stay untagged
            # except when iterating a set/dict directly (the element
            # *sequence* is what downstream accumulations inherit).
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = _EMPTY
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    env[item.optional_vars.id] = _expression_tags(
                        item.context_expr, env, self.info
                    )
        # Walrus assignments anywhere inside the statement.
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.NamedExpr) and isinstance(
                sub.target, ast.Name
            ):
                env[sub.target.id] = _expression_tags(sub.value, env, self.info)
        return env

    def _assign_target(
        self,
        target: ast.expr,
        value: ast.expr,
        tags: frozenset[str],
        env: dict[str, frozenset[str]],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    sub_tags = _expression_tags(sub_value, env, self.info)
                    self._assign_target(sub_target, sub_value, sub_tags, env)
            else:
                for sub_target in target.elts:
                    if isinstance(sub_target, ast.Name):
                        env[sub_target.id] = _EMPTY

    def _compute_origins(self) -> None:
        blocks = self.cfg.blocks
        block_in: dict[int, dict[str, frozenset[str]]] = {
            self.cfg.entry: self._initial_env()
        }
        block_out: dict[int, dict[str, frozenset[str]]] = {}
        for _ in range(len(blocks) + 2):  # bounded fixpoint
            changed = False
            for block in blocks:
                if block.index == self.cfg.entry:
                    merged = dict(self._initial_env())
                else:
                    merged = {}
                    for pred in block.predecessors:
                        for name, tags in block_out.get(pred, {}).items():
                            merged[name] = merged.get(name, _EMPTY) | tags
                block_in[block.index] = merged
                env = dict(merged)
                for stmt in block.statements:
                    self._env_in[id(stmt)] = dict(env)
                    env = self._transfer(stmt, env)
                if block_out.get(block.index) != env:
                    block_out[block.index] = env
                    changed = True
            if not changed:
                break


@dataclass
class ModuleAnalysis:
    """Cached whole-module analysis: scopes, module facts, per-function
    :class:`FunctionAnalysis` objects (built lazily, memoized)."""

    tree: ast.Module
    scope_tree: Scope
    info: ModuleInfo
    _functions: dict[int, FunctionAnalysis] = field(default_factory=dict)

    def functions(self) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [
            scope.node
            for scope in iter_scopes(self.scope_tree)
            if scope.kind == "function"
            and isinstance(scope.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def analysis_for(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> FunctionAnalysis:
        cached = self._functions.get(id(fn))
        if cached is None:
            scope = next(
                scope
                for scope in iter_scopes(self.scope_tree)
                if scope.node is fn
            )
            cached = FunctionAnalysis(fn, scope, self.info)
            self._functions[id(fn)] = cached
        return cached


def analyze_module(tree: ast.Module) -> ModuleAnalysis:
    """Build (or fetch the memoized) :class:`ModuleAnalysis` for a tree.

    The result is cached on the AST object itself, so the several flow
    rules that run over one file share a single analysis."""
    cached = getattr(tree, "_repro_dataflow", None)
    if isinstance(cached, ModuleAnalysis):
        return cached
    analysis = ModuleAnalysis(
        tree=tree,
        scope_tree=build_scope_tree(tree),
        info=_collect_module_info(tree),
    )
    tree._repro_dataflow = analysis  # type: ignore[attr-defined]
    return analysis


def source_digest(source: str) -> str:
    """Content hash of one module's source text (cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


#: Content-addressed parse+analysis cache.  Keyed on the *source digest*,
#: never on path identity or mtime: two files with identical content share
#: one entry, and an in-process edit of a file (or a ``--jobs`` worker
#: observing a stale mtime) can never be served a stale tree, because a
#: changed byte changes the key.  Bounded LRU so long-lived processes
#: (watch modes, test suites) don't grow without limit.
_SOURCE_CACHE: "OrderedDict[str, tuple[ast.Module, ModuleAnalysis]]" = (
    OrderedDict()
)
_SOURCE_CACHE_MAX = 512


def analyze_source(
    source: str, path: str = "<string>"
) -> tuple[ast.Module, ModuleAnalysis]:
    """Parse and analyze ``source``, keyed on its content hash.

    Returns ``(tree, analysis)``; raises :class:`SyntaxError` for
    unparsable input (never cached).  This is the entry point the lint
    driver and the interprocedural program builder share, so one file
    read feeds both the per-file flow rules and the whole-program pass.
    """
    key = source_digest(source)
    hit = _SOURCE_CACHE.get(key)
    if hit is not None:
        _SOURCE_CACHE.move_to_end(key)
        return hit
    tree = ast.parse(source, filename=path)
    analysis = analyze_module(tree)
    _SOURCE_CACHE[key] = (tree, analysis)
    while len(_SOURCE_CACHE) > _SOURCE_CACHE_MAX:
        _SOURCE_CACHE.popitem(last=False)
    return tree, analysis
