"""Custom AST lint pass with repo-specific correctness rules.

The generic linters the ecosystem ships cannot know that this codebase
(a) must be seed-reproducible end to end, (b) owns a hand-rolled graph
substrate whose private adjacency dicts may only be *mutated* inside
:mod:`repro.graph`, and (c) freezes graphs exactly once into
:class:`~repro.engine.AnalysisContext` snapshots.  This module encodes
those rules: the stateless per-statement family (REP001–REP006) and the
documentation family (REP301) live here, the flow-sensitive families
(REP1xx RNG discipline, REP2xx freeze-once contracts) in
:mod:`repro.devtools.rules_flow` on top of the
:mod:`repro.devtools.dataflow` core, the interprocedural families
(REP4xx parallel safety, REP5xx cache soundness) in
:mod:`repro.devtools.rules_interproc` on top of the
:mod:`repro.devtools.callgraph` / :mod:`repro.devtools.summaries` layer,
and the scale-soundness families (REP601/REP602 dtype intervals in
:mod:`repro.devtools.numeric`, REP603/REP604 resource lifetimes in
:mod:`repro.devtools.lifetimes`, REP605/REP606 streaming-memory
contracts in :mod:`repro.devtools.rules_memory`) on the same program
layer.

Usage::

    python -m repro.devtools.lint src/            # lint a tree
    repro lint src/                               # same, via the CLI
    repro lint --explain REP101                   # rule rationale
    repro lint src --format sarif --output lint.sarif
    repro lint src --jobs 4                       # parallel over files

Every rule is a class with a stable id (``REP001`` …), a one-line
``summary``, and a docstring explaining the rationale.  Violations can be
suppressed per line with ``# repro: noqa[REP001]`` (several ids comma
separated) or blanket ``# repro: noqa``; unknown ids inside a noqa are
themselves diagnosed as ``REP000``.  Project-wide configuration lives in
``pyproject.toml`` under ``[tool.repro.lint]``:

.. code-block:: toml

    [tool.repro.lint]
    select = ["REP001", "REP002"]   # default: every rule
    ignore = ["REP004"]
    value-objects = ["GroupStats"]  # REP203's checked constructors

    [tool.repro.lint.per-path-ignores]
    "src/repro/graph/*" = ["REP002"]

Known findings can be ratcheted in ``.repro-lint-baseline.json`` (see
:mod:`repro.devtools.baseline`); only regressions then fail the gate.
The linter exits non-zero when any unsuppressed, unbaselined violation
remains, so it can gate PRs (see ``scripts/check.sh``).
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import difflib
import fnmatch
import multiprocessing
import re
import sys
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools._base import (
    _CONTAINER_MUTATORS,
    _GLOBAL_RANDOM_FUNCS,
    _GRAPH_MUTATORS,
    _MATERIALIZERS,
    _PRIVATE_ADJ,
    _SAFE_NUMPY_RANDOM,
    FileContext,
    ProgramRule,
    Rule,
    Violation,
)
from repro.devtools.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.callgraph import build_program, module_name_for_path
from repro.devtools.dataflow import analyze_source
from repro.devtools.report import FORMATS, render
from repro.devtools.lifetimes import LIFETIME_RULES
from repro.devtools.numeric import NUMERIC_RULES
from repro.devtools.rules_flow import FLOW_RULES
from repro.devtools.rules_interproc import INTERPROC_RULES
from repro.devtools.rules_memory import MEMORY_RULES

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
    tomllib = None  # type: ignore[assignment]

__all__ = [
    "Violation",
    "FileContext",
    "LintConfig",
    "Rule",
    "UnseededRandomRule",
    "GraphPrivateMutationRule",
    "MutateWhileIterateRule",
    "FloatEqualityRule",
    "MissingAllRule",
    "BroadExceptRule",
    "DocstringCoverageRule",
    "FLOW_RULES",
    "INTERPROC_RULES",
    "NUMERIC_RULES",
    "LIFETIME_RULES",
    "MEMORY_RULES",
    "ALL_RULES",
    "lint_source",
    "lint_paths",
    "main",
]


#: Tolerates whitespace before the bracket (``# repro:noqa [REP001]``);
#: bracket contents are parsed and *validated*, never silently trusted.
_NOQA = re.compile(r"#\s*repro:\s*noqa\s*(?:\[(?P<rules>[^\]]*)\])?")


def _collect_random_aliases(tree: ast.Module) -> tuple[set[str], set[str], set[str]]:
    """Names bound to the ``random`` module, ``numpy``, and state functions
    imported directly from ``random`` (``from random import shuffle``)."""
    random_aliases: set[str] = set()
    numpy_aliases: set[str] = set()
    from_random: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or "random")
                elif alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "numpy.random" and alias.asname:
                    # ``import numpy.random as npr`` — treat as the module.
                    random_aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_RANDOM_FUNCS:
                    from_random.add(alias.asname or alias.name)
    return random_aliases, numpy_aliases, from_random


class UnseededRandomRule(Rule):
    """No module-level RNG state and no unseeded global ``random`` calls.

    Stochastic pipelines must thread an explicit ``random.Random(seed)``
    or ``numpy.random.default_rng(seed)``; calls like ``random.shuffle``
    or ``np.random.rand`` draw from hidden global state and silently
    break seed-reproducibility of every experiment that imports the
    module.  Module-level RNG instances are shared mutable state and are
    equally forbidden in library code.
    """

    id = "REP001"
    summary = "unseeded / global randomness in library code"
    example_bad = "random.shuffle(nodes)\n"
    example_good = "rng = random.Random(seed)\nrng.shuffle(nodes)\n"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        random_aliases, numpy_aliases, from_random = _collect_random_aliases(tree)
        module_level = {id(stmt) for stmt in tree.body}
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    node, ctx, random_aliases, numpy_aliases, from_random
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)) and id(
                node
            ) in module_level:
                value = node.value
                if value is not None and self._is_rng_constructor(
                    value, random_aliases, numpy_aliases
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "module-level RNG instance; construct the RNG inside "
                        "the function that uses it and thread a seed",
                    )

    def _check_call(
        self,
        node: ast.Call,
        ctx: FileContext,
        random_aliases: set[str],
        numpy_aliases: set[str],
        from_random: set[str],
    ) -> Iterator[Violation]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in from_random:
            yield self.violation(
                ctx,
                node,
                f"call to global-state random.{func.id}(); "
                "use a local random.Random(seed) instead",
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        # random.<fn>() on the global module.
        if isinstance(value, ast.Name) and value.id in random_aliases:
            if func.attr in _GLOBAL_RANDOM_FUNCS:
                yield self.violation(
                    ctx,
                    node,
                    f"call to global-state random.{func.attr}(); "
                    "use a local random.Random(seed) instead",
                )
            elif func.attr == "Random" and not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    "random.Random() without a seed argument is "
                    "OS-seeded and not reproducible",
                )
        # np.random.<fn>() on the legacy global generator.
        elif (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in numpy_aliases
            and func.attr not in _SAFE_NUMPY_RANDOM
        ):
            yield self.violation(
                ctx,
                node,
                f"call to numpy legacy global numpy.random.{func.attr}(); "
                "use numpy.random.default_rng(seed)",
            )

    @staticmethod
    def _is_rng_constructor(
        value: ast.expr, random_aliases: set[str], numpy_aliases: set[str]
    ) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "Random"
            and isinstance(func.value, ast.Name)
            and func.value.id in random_aliases
        ):
            return True
        if isinstance(func, ast.Attribute) and func.attr == "default_rng":
            inner = func.value
            if (
                isinstance(inner, ast.Attribute)
                and inner.attr == "random"
                and isinstance(inner.value, ast.Name)
                and inner.value.id in numpy_aliases
            ):
                return True
        return False


def _contains_private_adj(node: ast.expr) -> ast.Attribute | None:
    """Return the first ``._adj`` / ``._succ`` / ``._pred`` attribute access
    inside ``node``, or None."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _PRIVATE_ADJ:
            return sub
    return None


class GraphPrivateMutationRule(Rule):
    """No mutation of the graph substrate's private adjacency outside
    :mod:`repro.graph`.

    ``Graph._adj`` / ``DiGraph._succ`` / ``DiGraph._pred`` keep the edge
    count (``_num_edges``) consistent only when mutated through the
    public API.  Reading them is an accepted fast path for kernels;
    writing them from outside the graph package corrupts edge accounting
    invisibly.  The graph package itself is exempted via the
    ``per-path-ignores`` table in ``pyproject.toml``.
    """

    id = "REP002"
    summary = "mutation of Graph._adj/_succ/_pred outside repro.graph"
    example_bad = "g._adj[u][v] = w\n"
    example_good = "g.add_edge(u, v, weight=w)\n"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    hit = _contains_private_adj(target)
                    if hit is not None:
                        yield self.violation(
                            ctx,
                            node,
                            f"assignment into private adjacency "
                            f"'.{hit.attr}'; use the public graph API",
                        )
                        break
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _CONTAINER_MUTATORS:
                    hit = _contains_private_adj(node.func.value)
                    if hit is not None:
                        yield self.violation(
                            ctx,
                            node,
                            f"in-place mutation of private adjacency "
                            f"'.{hit.attr}.{node.func.attr}()'; "
                            "use the public graph API",
                        )


def _iteration_base_name(iter_expr: ast.expr) -> str | None:
    """Name of the object a ``for`` loop iterates live, or None.

    ``for v in g`` / ``for e in g.edges`` / ``for n, nb in g.adjacency()``
    all iterate graph state live and return ``"g"``; anything routed
    through a materializer (``list(g.edges)``) or an unrelated expression
    returns None.
    """
    expr = iter_expr
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _MATERIALIZERS:
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            return func.value.id
        return None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        return expr.value.id
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class MutateWhileIterateRule(Rule):
    """No structural mutation of a graph that is being iterated.

    Iterating ``g`` (or a live view such as ``g.edges`` /
    ``g.adjacency()``) while calling ``g.add_edge`` / ``g.remove_node``
    inside the loop body either raises ``RuntimeError`` mid-run or —
    worse — silently skips elements.  Materialize first:
    ``for u, v in list(g.edges): ...``.
    """

    id = "REP003"
    summary = "graph mutated while being iterated"
    example_bad = "for u, v in g.edges:\n    g.remove_edge(u, v)\n"
    example_good = "for u, v in list(g.edges):\n    g.remove_edge(u, v)\n"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            base = _iteration_base_name(node.iter)
            if base is None:
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _GRAPH_MUTATORS
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == base
                ):
                    yield self.violation(
                        ctx,
                        sub,
                        f"'{base}.{sub.func.attr}()' mutates '{base}' while "
                        f"it is being iterated (line {node.lineno}); "
                        "materialize the iterable first",
                    )


def _involves_float(expr: ast.expr) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "float"
        ):
            return True
    return False


class FloatEqualityRule(Rule):
    """No ``==`` / ``!=`` against floats in the scoring layer.

    The scoring functions reproduce the paper's Fig. 5/6 numbers;
    comparing computed scores with ``==`` against float constants is
    almost always a rounding bug waiting to happen.  Use
    ``math.isclose`` or an explicit tolerance.  The rule only applies
    under ``repro/scoring/`` — elsewhere float equality is occasionally
    legitimate (e.g. sentinel defaults).
    """

    id = "REP004"
    summary = "float == / != comparison in repro/scoring"
    example_bad = "if conductance == 0.5: ...\n"
    example_good = "if math.isclose(conductance, 0.5): ...\n"

    #: Only files with one of these path components are checked.
    path_filter: tuple[str, ...] = ("scoring",)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        if not any(part in ctx.path_parts for part in self.path_filter):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_involves_float(operand) for operand in operands):
                yield self.violation(
                    ctx,
                    node,
                    "float equality comparison in scoring code; "
                    "use math.isclose or an explicit tolerance",
                )


class MissingAllRule(Rule):
    """Every public module defines ``__all__``.

    ``__all__`` is the contract between a module and ``from m import *``
    as well as the public-API test-suite; a module without it silently
    leaks helpers.  ``__main__.py`` entry points are exempt (they are
    executed, never imported as API).
    """

    id = "REP005"
    summary = "public module without __all__"
    example_bad = '"""Module docstring."""\n\ndef helper(): ...\n'
    example_good = '"""Module docstring."""\n\n__all__ = ["helper"]\n'

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        name = ctx.module_basename
        if name == "__main__.py":
            return
        if name.startswith("_") and name != "__init__.py":
            return
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
            ):
                return
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__all__"
            ):
                return
        anchor = tree.body[0] if tree.body else tree
        yield self.violation(
            ctx, anchor, "public module does not define __all__"
        )


class BroadExceptRule(Rule):
    """No bare ``except:`` and no ``except Exception:`` in library code.

    Broad handlers swallow :class:`KeyboardInterrupt` (bare form) or mask
    substrate bugs as recoverable conditions.  Catch the specific
    :mod:`repro.exceptions` class, or let the error propagate.
    """

    id = "REP006"
    summary = "bare or overly broad except clause"
    example_bad = "try:\n    score(g)\nexcept Exception:\n    pass\n"
    example_good = "try:\n    score(g)\nexcept GraphError:\n    raise\n"

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx, node, "bare 'except:'; name the exception class"
                )
                continue
            exprs = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expr in exprs:
                if isinstance(expr, ast.Name) and expr.id in self._BROAD:
                    yield self.violation(
                        ctx,
                        node,
                        f"'except {expr.id}:' is too broad; catch the "
                        "specific repro.exceptions class",
                    )
                    break


class DocstringCoverageRule(Rule):
    """Every public function and class of the instrumented packages
    (:mod:`repro.obs`, :mod:`repro.engine`) has an imperative-summary
    docstring.

    The observability surface is consumed by people debugging *other*
    layers — a span name or metric helper without a docstring forces them
    to reverse-engineer the instrumentation itself.  The first line must
    read as an imperative summary ("Return …", "Record …"), matching the
    house style; openers like "This function returns …" or "Returns …"
    are flagged.  Private names (leading underscore), private modules and
    nested helpers are exempt.
    """

    id = "REP301"
    summary = "public obs/engine API without imperative-summary docstring"
    example_bad = (
        'def freeze(graph):\n'
        '    """This function freezes the graph."""\n'
    )
    example_good = (
        'def freeze(graph):\n'
        '    """Freeze the graph into CSR form."""\n'
    )

    #: Only files with one of these path components are checked.
    path_filter: tuple[str, ...] = ("obs", "engine")

    #: First words that mark a descriptive (non-imperative) opening.
    _WEAK_OPENERS = frozenset(
        {
            "a",
            "an",
            "are",
            "builds",
            "computes",
            "contains",
            "creates",
            "does",
            "gets",
            "has",
            "holds",
            "implements",
            "is",
            "it",
            "makes",
            "provides",
            "represents",
            "returns",
            "sets",
            "the",
            "these",
            "this",
            "wraps",
        }
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        name = ctx.module_basename
        if name.startswith("_") and name != "__init__.py":
            return
        if not any(part in ctx.path_parts for part in self.path_filter):
            return
        yield from self._check_body(tree.body, ctx, qualname=())

    def _check_body(
        self,
        body: Sequence[ast.stmt],
        ctx: FileContext,
        qualname: tuple[str, ...],
    ) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not stmt.name.startswith("_"):
                    yield from self._check_docstring(
                        stmt, ctx, qualname, kind="function"
                    )
            elif isinstance(stmt, ast.ClassDef):
                if stmt.name.startswith("_"):
                    continue
                yield from self._check_docstring(
                    stmt, ctx, qualname, kind="class"
                )
                yield from self._check_body(
                    stmt.body, ctx, (*qualname, stmt.name)
                )

    def _check_docstring(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef,
        ctx: FileContext,
        qualname: tuple[str, ...],
        kind: str,
    ) -> Iterator[Violation]:
        name = ".".join((*qualname, node.name))
        doc = ast.get_docstring(node)
        if not doc or not doc.strip():
            yield self.violation(
                ctx, node, f"public {kind} '{name}' has no docstring"
            )
            return
        first_line = doc.strip().splitlines()[0].strip()
        match = re.match(r"[A-Za-z]+", first_line)
        first_word = match.group(0).lower() if match else ""
        if not first_word or first_word in self._WEAK_OPENERS:
            yield self.violation(
                ctx,
                node,
                f"docstring of {kind} '{name}' opens with "
                f"{first_word or first_line[:20]!r}; start with an "
                "imperative summary (e.g. 'Return ...', 'Record ...')",
            )


ALL_RULES: tuple[type[Rule], ...] = (
    UnseededRandomRule,
    GraphPrivateMutationRule,
    MutateWhileIterateRule,
    FloatEqualityRule,
    MissingAllRule,
    BroadExceptRule,
    *FLOW_RULES,
    DocstringCoverageRule,
    *INTERPROC_RULES,
    *NUMERIC_RULES,
    *LIFETIME_RULES,
    *MEMORY_RULES,
)

_KNOWN_RULE_IDS = frozenset(rule.id for rule in ALL_RULES)


@dataclass(frozen=True)
class LintConfig:
    """Effective linter configuration (``[tool.repro.lint]``)."""

    select: tuple[str, ...] = tuple(rule.id for rule in ALL_RULES)
    ignore: tuple[str, ...] = ()
    per_path_ignores: dict[str, tuple[str, ...]] = field(default_factory=dict)
    value_objects: tuple[str, ...] = ("GroupStats",)
    root: Path | None = None

    @classmethod
    def load(cls, start: Path | None = None) -> "LintConfig":
        """Load configuration from the nearest ``pyproject.toml``.

        Walks up from ``start`` (default: cwd).  A missing file or table
        yields defaults; a present ``[tool.repro.lint]`` table on a
        Python without :mod:`tomllib` yields defaults *with a stderr
        warning* — silently ignoring explicit config is worse than noise.
        """
        here = (start or Path.cwd()).resolve()
        if here.is_file():
            here = here.parent
        for candidate in (here, *here.parents):
            pyproject = candidate / "pyproject.toml"
            if pyproject.is_file():
                return cls.from_pyproject(pyproject)
        return cls()

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        if tomllib is None:
            _warn_tomllib_missing(pyproject)
            return cls(root=pyproject.parent)
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
        table = data.get("tool", {}).get("repro", {}).get("lint", {})
        known = tuple(rule.id for rule in ALL_RULES)
        select = tuple(table.get("select", known))
        ignore = tuple(table.get("ignore", ()))
        per_path = {
            pattern: tuple(rules)
            for pattern, rules in table.get("per-path-ignores", {}).items()
        }
        value_objects = tuple(table.get("value-objects", ("GroupStats",)))
        return cls(
            select=select,
            ignore=ignore,
            per_path_ignores=per_path,
            value_objects=value_objects,
            root=pyproject.parent,
        )

    def active_rules(self) -> list[Rule]:
        """Instantiate the enabled rules, honouring select/ignore."""
        chosen = set(self.select) - set(self.ignore)
        return [rule() for rule in ALL_RULES if rule.id in chosen]

    def path_ignored_rules(self, path: str) -> set[str]:
        """Rule ids suppressed for ``path`` by ``per-path-ignores``."""
        candidates = {Path(path).as_posix()}
        if self.root is not None:
            try:
                candidates.add(
                    Path(path).resolve().relative_to(self.root.resolve()).as_posix()
                )
            except ValueError:
                pass
        ignored: set[str] = set()
        for pattern, rules in self.per_path_ignores.items():
            if any(
                fnmatch.fnmatch(candidate, pattern) for candidate in candidates
            ):
                ignored.update(rules)
        return ignored


def _warn_tomllib_missing(pyproject: Path) -> None:
    """Warn (once per process) when explicit lint config cannot be read."""
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:  # pragma: no cover - racing filesystem
        return
    if "[tool.repro.lint" in text:
        print(
            f"warning: {pyproject} has a [tool.repro.lint] table but this "
            "Python lacks tomllib (needs >= 3.11); falling back to default "
            "lint configuration",
            file=sys.stderr,
        )


def _suppressed(lines: Sequence[str], lineno: int, rule_id: str) -> bool:
    """Whether the physical line carries a matching ``# repro: noqa``."""
    if not 1 <= lineno <= len(lines):
        return False
    match = _NOQA.search(lines[lineno - 1])
    if match is None:
        return False
    listed = match.group("rules")
    if listed is None:
        return True  # blanket ``# repro: noqa``
    rules = {item.strip() for item in listed.split(",") if item.strip()}
    return rule_id in rules


def _check_noqa_ids(lines: Sequence[str], path: str) -> list[Violation]:
    """REP000 diagnostics for unknown rule ids inside noqa comments.

    A typo'd id (``noqa[REP101x]``) would otherwise read as a *working*
    suppression to a human while suppressing nothing — or,
    worse, a stale id keeps riding along forever.  These diagnostics are
    never themselves suppressible.
    """
    violations: list[Violation] = []
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA.search(line)
        if match is None or match.group("rules") is None:
            continue
        listed = [
            item.strip()
            for item in match.group("rules").split(",")
            if item.strip()
        ]
        for rule_id in listed:
            if rule_id not in _KNOWN_RULE_IDS:
                violations.append(
                    Violation(
                        rule_id="REP000",
                        message=(
                            f"unknown rule id '{rule_id}' in noqa comment; "
                            "known ids: REP001..REP606 (see --list-rules)"
                        ),
                        path=path,
                        line=lineno,
                        col=match.start(),
                    )
                )
    return violations


def lint_source(
    source: str, path: str, config: LintConfig | None = None
) -> list[Violation]:
    """Lint one source string; returns the unsuppressed violations."""
    config = config if config is not None else LintConfig()
    try:
        # Parse through the content-hash cache so repeated lints of an
        # unchanged module (watch loops, bench warm runs, the program
        # pass below) reuse the tree *and* its dataflow analysis.
        tree, _ = analyze_source(source, path)
    except SyntaxError as error:
        return [
            Violation(
                rule_id="REP000",
                message=f"syntax error: {error.msg}",
                path=path,
                line=error.lineno or 1,
                col=error.offset or 0,
            )
        ]
    lines = tuple(source.splitlines())
    ctx = FileContext(
        path=path,
        lines=lines,
        options={"value_objects": config.value_objects},
    )
    path_ignored = config.path_ignored_rules(path)
    violations: list[Violation] = _check_noqa_ids(lines, path)
    for rule in config.active_rules():
        if rule.id in path_ignored:
            continue
        for violation in rule.check(tree, ctx):
            if not _suppressed(lines, violation.line, violation.rule_id):
                violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _lint_one_file(item: tuple[str, LintConfig]) -> list[Violation]:
    """Worker for the multiprocessing pool (must be top-level picklable)."""
    path, config = item
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path, config)


def _run_program_rules(
    files: Sequence[str], config: LintConfig
) -> list[Violation]:
    """Run the interprocedural rules (REP4xx–REP6xx) over one batch.

    This always executes in the parent process, after the per-file pass:
    the whole-program rules need every module at once, and running them
    exactly once keeps serial and ``--jobs`` output byte-identical.
    Files that fail to parse are skipped here — the per-file pass already
    reported them as REP000.
    """
    program_rules = [
        rule for rule in config.active_rules() if isinstance(rule, ProgramRule)
    ]
    if not program_rules:
        return []
    items: list[tuple[str, str, str]] = []
    lines_by_path: dict[str, tuple[str, ...]] = {}
    seen_modnames: set[str] = set()
    for path in files:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError:
            continue
        try:
            analyze_source(source, path)
        except SyntaxError:
            continue
        modname = module_name_for_path(path)
        while modname in seen_modnames:
            modname += "_"
        seen_modnames.add(modname)
        items.append((modname, path, source))
        lines_by_path[path] = tuple(source.splitlines())
    if not items:
        return []
    # A single pathological file must degrade this pass, not crash the
    # whole lint: the per-file rules have already run, so on an analysis
    # failure we warn and skip the interprocedural findings only.
    try:
        program = build_program(items)
    except Exception as exc:  # repro: noqa[REP006] - guard of last resort
        print(
            "repro lint: interprocedural analysis failed "
            f"({type(exc).__name__}: {exc}); skipping REP4xx-REP6xx",
            file=sys.stderr,
        )
        return []
    violations: list[Violation] = []
    for rule in program_rules:
        try:
            found = list(rule.check_program(program))
        except Exception as exc:  # repro: noqa[REP006] - guard of last resort
            print(
                f"repro lint: rule {rule.id} failed "
                f"({type(exc).__name__}: {exc}); skipping it",
                file=sys.stderr,
            )
            continue
        for violation in found:
            if violation.rule_id in config.path_ignored_rules(violation.path):
                continue
            lines = lines_by_path.get(violation.path, ())
            if _suppressed(lines, violation.line, violation.rule_id):
                continue
            violations.append(violation)
    return violations


def lint_paths(
    paths: Iterable[str | Path],
    config: LintConfig | None = None,
    *,
    jobs: int = 1,
) -> list[Violation]:
    """Lint every ``.py`` file under ``paths``.

    With ``jobs > 1`` files are linted in a process pool; results are
    merged in the (sorted) file-iteration order, so the output is
    byte-identical to a single-process run.  The interprocedural rules
    always run once, serially, in the parent — their findings are merged
    into the owning file's block and re-sorted, preserving determinism.
    """
    from repro import obs
    from repro.obs import instruments

    config = config if config is not None else LintConfig()
    with obs.span("lint.run"):
        files = [str(path) for path in iter_python_files(paths)]
        if jobs > 1 and len(files) > 1:
            items = [(path, config) for path in files]
            with multiprocessing.Pool(
                processes=min(jobs, len(files))
            ) as pool:
                per_file = pool.map(_lint_one_file, items)
        else:
            per_file = [_lint_one_file((path, config)) for path in files]
        program_violations = _run_program_rules(files, config)
        if program_violations:
            by_path: dict[str, list[Violation]] = {}
            for violation in program_violations:
                by_path.setdefault(violation.path, []).append(violation)
            sort_key = lambda v: (v.path, v.line, v.col, v.rule_id)  # noqa: E731
            for index, path in enumerate(files):
                extra = by_path.pop(path, None)
                if extra:
                    per_file[index] = sorted(
                        [*per_file[index], *extra], key=sort_key
                    )
            # Paths the program reports that are not in the batch (never
            # expected) still come out deterministically, at the end.
            for path in sorted(by_path):
                per_file.append(sorted(by_path[path], key=sort_key))
        violations: list[Violation] = []
        for result in per_file:
            violations.extend(result)
        instruments.LINT_FILES.inc(len(files))
        instruments.LINT_VIOLATIONS.inc(len(violations))
    return violations


def _print_rule_catalogue() -> None:
    for rule in ALL_RULES:
        doc = (rule.__doc__ or "").strip().splitlines()[0]
        print(f"{rule.id}  {rule.summary}")
        print(f"        {doc}")


def _print_one_explanation(rule: type[Rule]) -> None:
    print(f"{rule.id} — {rule.summary}")
    print()
    doc = (rule.__doc__ or "").strip()
    for line in doc.splitlines():
        print(line.strip() if line.strip() else "")
    if rule.example_bad:
        print()
        print("Bad:")
        for line in rule.example_bad.rstrip("\n").splitlines():
            print(f"    {line}")
    if rule.example_good:
        print()
        print("Good:")
        for line in rule.example_good.rstrip("\n").splitlines():
            print(f"    {line}")


def _explain_rule(rule_id: str) -> int:
    """Print one rule's rationale, or all of them for ``--explain all``."""
    if rule_id.lower() == "all":
        for index, rule in enumerate(
            sorted(ALL_RULES, key=lambda rule: rule.id)
        ):
            if index:
                print()
                print("-" * 72)
                print()
            _print_one_explanation(rule)
        return 0
    for rule in ALL_RULES:
        if rule.id == rule_id:
            _print_one_explanation(rule)
            return 0
    hints = difflib.get_close_matches(
        rule_id, sorted(_KNOWN_RULE_IDS), n=3, cutoff=0.6
    )
    suggestion = f"; did you mean {', '.join(hints)}?" if hints else ""
    print(
        f"error: unknown rule id {rule_id!r}{suggestion} (see --list-rules)",
        file=sys.stderr,
    )
    return 2


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.devtools.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.devtools.lint",
        description="Repo-specific AST lint pass (rules REP001-REP606)",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or dirs")
    parser.add_argument(
        "--select", help="comma-separated rule ids to enable (overrides config)"
    )
    parser.add_argument(
        "--ignore", help="comma-separated rule ids to disable (overrides config)"
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="skip pyproject.toml discovery; run with built-in defaults",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--explain",
        metavar="REPxxx",
        help=(
            "print one rule's rationale with a bad/good example pair "
            "('all' prints the whole catalogue in id order)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files in N worker processes (output stays deterministic)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "rewrite the baseline from current findings (pruning entries "
            "that no longer fire) and exit"
        ),
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help=(
            "fail if the baseline contains stale entries that no longer "
            "match any finding (ratchet enforcement)"
        ),
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rule_catalogue()
        return 0
    if args.explain:
        return _explain_rule(args.explain.strip())
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.no_config:
        config = LintConfig()
    else:
        first = Path(args.paths[0]) if args.paths else Path.cwd()
        config = LintConfig.load(first.resolve())
    if args.select:
        config = dataclasses.replace(
            config,
            select=tuple(
                s.strip() for s in args.select.split(",") if s.strip()
            ),
        )
    if args.ignore:
        config = dataclasses.replace(
            config,
            ignore=tuple(
                s.strip() for s in args.ignore.split(",") if s.strip()
            ),
        )
    missing = [entry for entry in args.paths if not Path(entry).exists()]
    if missing:
        for entry in missing:
            print(f"error: no such file or directory: {entry}", file=sys.stderr)
        return 2

    violations = lint_paths(args.paths, config, jobs=args.jobs)

    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else (config.root or Path.cwd()) / DEFAULT_BASELINE_NAME
    )
    entries = load_baseline(baseline_path)
    if args.write_baseline:
        written = write_baseline(violations, baseline_path, previous=entries)
        pruned = sorted(set(entries) - set(written))
        print(f"wrote {len(written)} baseline entr(y/ies) to {baseline_path}")
        if pruned:
            print(f"pruned {len(pruned)} stale entr(y/ies):")
            for key in pruned:
                print(f"  {key}")
        return 0
    remaining, stale = apply_baseline(violations, entries)
    if args.check_baseline:
        if stale:
            print(
                f"error: {len(stale)} stale baseline entr(y/ies) in "
                f"{baseline_path}; tighten with --write-baseline:",
                file=sys.stderr,
            )
            for key in stale:
                print(f"  {key}", file=sys.stderr)
            return 1
        print(
            f"baseline {baseline_path} is tight "
            f"({len(entries)} entr(y/ies), none stale)"
        )
        return 0
    for key in stale:
        print(
            f"warning: stale baseline entry {key!r} — no findings remain; "
            "tighten the baseline with --write-baseline",
            file=sys.stderr,
        )

    document = render(remaining, args.format, rules=config.active_rules())
    if args.output:
        Path(args.output).write_text(document, encoding="utf-8")
        if remaining:
            print(
                f"{len(remaining)} violation(s) found (report: {args.output})"
            )
    else:
        sys.stdout.write(document)
        if remaining and args.format == "text":
            print(f"{len(remaining)} violation(s) found")
    return 1 if remaining else 0


if __name__ == "__main__":
    sys.exit(main())
