"""Triangle counting and clustering coefficients.

The paper's section IV-A2 measures the *local clustering coefficient* —
for each vertex, the number of triangles it participates in relative to the
maximum possible given its degree — and reports its CDF (Fig. 4, mean
0.4901 on the Google+ corpus).  Directed graphs are measured on their
undirected skeleton, the standard convention for OSN clustering.

Exact counting intersects sorted CSR adjacency rows; a node-sampled variant
keeps the cost bounded on dense ego-joined corpora.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph

Node = Hashable

__all__ = [
    "triangles_per_vertex",
    "local_clustering",
    "clustering_values",
    "average_clustering",
    "transitivity",
]


def _as_csr(graph: Graph | DiGraph | CSRGraph) -> CSRGraph | None:
    """Freeze to CSR; ``None`` signals a vertex-less graph (nothing to
    count, and :class:`CSRGraph` refuses to freeze it)."""
    if isinstance(graph, CSRGraph):
        return graph
    if graph.number_of_nodes() == 0:
        return None
    return CSRGraph(graph)  # union orientation for DiGraph


def _intersect_sorted_count(a: np.ndarray, b: np.ndarray) -> int:
    """Count common elements of two sorted integer arrays."""
    if a.size == 0 or b.size == 0:
        return 0
    return int(np.intersect1d(a, b, assume_unique=True).size)


def triangles_per_vertex(
    graph: Graph | DiGraph | CSRGraph,
    vertices: Sequence[int] | np.ndarray | None = None,
) -> np.ndarray:
    """Number of triangles through each vertex of the undirected skeleton.

    ``vertices`` restricts computation to the given integer vertex ids
    (defaults to all).  The count for vertex ``v`` is the number of edges
    among its neighbours.
    """
    csr = _as_csr(graph)
    if csr is None:
        return np.zeros(0 if vertices is None else len(vertices), dtype=np.int64)
    if vertices is None:
        vertex_ids: np.ndarray = np.arange(csr.num_vertices, dtype=np.int64)
    else:
        vertex_ids = np.asarray(vertices, dtype=np.int64)
    counts = np.zeros(len(vertex_ids), dtype=np.int64)
    for position, vertex in enumerate(vertex_ids):
        neighbors = csr.neighbors(int(vertex))
        if neighbors.size < 2:
            continue
        links = 0
        for u in neighbors:
            # Count neighbours of u that are also neighbours of vertex and
            # larger than u, so each neighbour-neighbour edge counts once.
            row = csr.neighbors(int(u))
            row = row[np.searchsorted(row, u + 1) :]
            links += _intersect_sorted_count(row, neighbors)
        counts[position] = links
    return counts


def local_clustering(
    graph: Graph | DiGraph | CSRGraph, vertex: int
) -> float:
    """Local clustering coefficient of one integer vertex id."""
    csr = _as_csr(graph)
    if csr is None:
        raise IndexError(f"vertex {vertex} out of range for an empty graph")
    degree = csr.degree(vertex)
    if degree < 2:
        return 0.0
    triangles = int(triangles_per_vertex(csr, [vertex])[0])
    return 2.0 * triangles / (degree * (degree - 1))


def clustering_values(
    graph: Graph | DiGraph | CSRGraph,
    *,
    sample: int | None = None,
    seed: int | None = None,
    include_degenerate: bool = True,
) -> np.ndarray:
    """Local clustering coefficients, optionally over a vertex sample.

    With ``sample`` set, that many vertices are drawn uniformly without
    replacement — the estimator behind Fig. 4 on large corpora.  Vertices of
    degree < 2 contribute 0 when ``include_degenerate`` is True and are
    dropped otherwise.
    """
    csr = _as_csr(graph)
    if csr is None:
        return np.zeros(0, dtype=np.float64)
    n = csr.num_vertices
    rng = np.random.default_rng(seed)
    if sample is None or sample >= n:
        vertex_ids = np.arange(n, dtype=np.int64)
    else:
        if sample <= 0:
            raise ValueError("sample must be positive")
        vertex_ids = rng.choice(n, size=sample, replace=False)
    degrees = np.diff(csr.indptr)[vertex_ids]
    triangles = triangles_per_vertex(csr, vertex_ids)
    with np.errstate(divide="ignore", invalid="ignore"):
        coefficients = np.where(
            degrees >= 2,
            2.0 * triangles / np.maximum(degrees * (degrees - 1), 1),
            0.0,
        )
    if not include_degenerate:
        coefficients = coefficients[degrees >= 2]
    return coefficients


def average_clustering(
    graph: Graph | DiGraph | CSRGraph,
    *,
    sample: int | None = None,
    seed: int | None = None,
) -> float:
    """Mean local clustering coefficient (paper reports 0.4901 on Google+)."""
    values = clustering_values(graph, sample=sample, seed=seed)
    if values.size == 0:
        return 0.0
    return float(values.mean())


def transitivity(graph: Graph | DiGraph | CSRGraph) -> float:
    """Global transitivity: 3 * triangles / open-or-closed triads."""
    csr = _as_csr(graph)
    if csr is None:
        return 0.0
    triangles = triangles_per_vertex(csr)
    degrees = np.diff(csr.indptr)
    triads = (degrees * (degrees - 1) // 2).sum()
    if triads == 0:
        return 0.0
    return float(triangles.sum() / triads)
