"""Synthetic ego-network-collection generator (Google+/Twitter stand-in).

The McAuley–Leskovec crawl the paper uses is not downloadable in this
environment, so we reproduce its *construction process* (DESIGN.md,
"Substitutions"):

1. A shared pool of users; each ego network samples its alters from the
   pool with Zipf-weighted popularity, so a few pool users appear in many
   ego networks (the bridges of paper Figs. 1–2).
2. Ego-network sizes are log-normal (multiplicative circle growth — the
   process behind the paper's log-normal in-degree finding).
3. Alters inside an ego network are densely wired at ``edge_probability``;
   circles are attribute-based subsets wired even more densely
   (``circle_edge_boost``).
4. A fraction of egos additionally share a Fang-et-al. "celebrity" circle:
   very popular members, *no* extra internal wiring — the star-like,
   low-score tail of the paper's Fig. 5 distributions.

Joining the generated ego networks yields a graph with the crawl's
signature: ambient density far above a BFS crawl, high clustering, and
circles that are internally dense yet massively connected to the outside.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.ego import EgoNetwork, EgoNetworkCollection
from repro.data.groups import Circle
from repro.synth.heavy_tail import lognormal_sizes, zipf_weights

__all__ = ["EgoCollectionConfig", "generate_ego_collection"]


@dataclass(frozen=True)
class EgoCollectionConfig:
    """Parameters of the synthetic ego-network collection.

    The defaults produce a Google+-like corpus at laptop scale; the
    Twitter-like preset in :mod:`repro.synth.paper_datasets` overrides
    them with sparser values.
    """

    #: number of ego networks (the paper's corpus has 133)
    num_egos: int = 40
    #: size of the shared user pool alters are drawn from
    pool_size: int = 3000
    #: median ego-network size (log-normal)
    ego_size_median: float = 120.0
    #: log-space sigma of ego-network sizes
    ego_size_sigma: float = 0.6
    #: hard cap on ego-network size
    ego_size_max: int = 800
    #: Zipf exponent of pool-member popularity (higher => stronger bridges)
    membership_zipf_exponent: float = 0.8
    #: fraction of each ego's alters that are private (crawled only here);
    #: drives the large exactly-one-membership population of paper Fig. 2
    private_alter_fraction: float = 0.45
    #: probability that an ego network is fully private (no shared alters);
    #: tunes the overlap fraction below 1 (paper reports 93.5 %)
    isolated_ego_probability: float = 0.06
    #: probability of a directed edge between two alters of the same ego
    edge_probability: float = 0.08
    #: fraction of intra-ego wiring budget spent on *local* (latent-space)
    #: edges rather than uniform-random ones.  Alters get positions in a
    #: latent social space and preferentially link to nearby alters, which
    #: produces the high clustering coefficient of real ego networks
    #: (paper Fig. 4: mean 0.49); the remainder are uniform shortcuts.
    local_edge_fraction: float = 0.75
    #: probability that an edge gains its reverse edge
    reciprocity: float = 0.4
    #: number of latent attribute groups per ego network
    attribute_groups_min: int = 3
    attribute_groups_max: int = 7
    #: circles kept per ego network
    circles_per_ego_min: int = 2
    circles_per_ego_max: int = 5
    #: minimum circle size (smaller attribute groups are not shared)
    circle_size_min: int = 8
    #: extra directed-edge probability inside a circle
    circle_edge_boost: float = 0.25
    #: fraction of egos that also share a celebrity circle
    celebrity_fraction: float = 0.15
    #: celebrity circle size range
    celebrity_size_min: int = 8
    celebrity_size_max: int = 20
    #: Zipf exponent used when picking celebrities (high => only stars)
    celebrity_zipf_exponent: float = 1.6
    #: fraction of *shared* (globally popular) alters eligible for ordinary
    #: circles; private contacts are always eligible.  Close-contact facets
    #: (family, colleagues) are made of personal contacts, not celebrities —
    #: which keeps circle members less hub-like than the random-walk
    #: baseline (the paper's Fig. 5b separation)
    shared_circle_inclusion: float = 0.5
    #: directed edges (Google+/Twitter) vs undirected
    directed: bool = True

    def validate(self) -> None:
        """Raise :class:`ValueError` on inconsistent parameters."""
        if self.num_egos < 1:
            raise ValueError("num_egos must be >= 1")
        if self.pool_size < self.ego_size_max:
            raise ValueError("pool_size must be >= ego_size_max")
        if not 0 <= self.edge_probability <= 1:
            raise ValueError("edge_probability must be in [0, 1]")
        if not 0 <= self.circle_edge_boost <= 1:
            raise ValueError("circle_edge_boost must be in [0, 1]")
        if not 0 <= self.reciprocity <= 1:
            raise ValueError("reciprocity must be in [0, 1]")
        if not 0 <= self.celebrity_fraction <= 1:
            raise ValueError("celebrity_fraction must be in [0, 1]")
        if self.circle_size_min < 2:
            raise ValueError("circle_size_min must be >= 2")
        if self.circles_per_ego_min > self.circles_per_ego_max:
            raise ValueError("circles_per_ego range is inverted")
        if self.attribute_groups_min > self.attribute_groups_max:
            raise ValueError("attribute_groups range is inverted")
        if self.celebrity_size_min > self.celebrity_size_max:
            raise ValueError("celebrity_size range is inverted")
        if not 0 <= self.private_alter_fraction <= 1:
            raise ValueError("private_alter_fraction must be in [0, 1]")
        if not 0 <= self.isolated_ego_probability <= 1:
            raise ValueError("isolated_ego_probability must be in [0, 1]")
        if not 0 <= self.shared_circle_inclusion <= 1:
            raise ValueError("shared_circle_inclusion must be in [0, 1]")
        if not 0 <= self.local_edge_fraction <= 1:
            raise ValueError("local_edge_fraction must be in [0, 1]")


def _random_ordered_pairs(
    count: int, probability: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample distinct ordered pairs (i, j), i != j, from ``count`` items,
    each included with ``probability``; returns an (m, 2) index array."""
    total = count * (count - 1)
    if total == 0 or probability <= 0:
        return np.empty((0, 2), dtype=np.int64)
    m = rng.binomial(total, probability)
    if m == 0:
        return np.empty((0, 2), dtype=np.int64)
    flat = rng.choice(total, size=m, replace=False)
    i = flat // (count - 1)
    j = flat % (count - 1)
    j = np.where(j >= i, j + 1, j)  # skip the diagonal
    return np.stack([i, j], axis=1)


def _edges_within(
    members: np.ndarray,
    probability: float,
    rng: np.random.Generator,
    *,
    directed: bool,
) -> set[tuple[int, int]]:
    """Random simple edges among ``members`` with the given probability."""
    pairs = _random_ordered_pairs(len(members), probability, rng)
    edges: set[tuple[int, int]] = set()
    for i, j in pairs:
        u, v = int(members[i]), int(members[j])
        if not directed and u > v:
            u, v = v, u
        edges.add((u, v))
    return edges


def _geometric_edges_within(
    members: np.ndarray,
    probability: float,
    local_fraction: float,
    rng: np.random.Generator,
    *,
    directed: bool,
) -> set[tuple[int, int]]:
    """Clustered intra-ego wiring: latent-space neighbours plus shortcuts.

    Alters get uniform positions in the unit square; the ``local_fraction``
    share of the pair-probability budget connects each alter to its nearest
    neighbours (a random geometric graph, whose triangle density yields the
    high clustering of real ego networks), the rest are uniform-random
    shortcut pairs preserving the small-world mixing.
    """
    k = len(members)
    if k < 2 or probability <= 0:
        return set()
    if local_fraction <= 0:
        return _edges_within(members, probability, rng, directed=directed)
    positions = rng.random((k, 2))
    # Radius so the expected geometric degree matches the local budget:
    # pi r^2 (k-1) = local_fraction * probability * (k-1)  =>  r^2 = lf*p/pi.
    radius_sq = local_fraction * probability / np.pi
    deltas = positions[:, None, :] - positions[None, :, :]
    close = (deltas**2).sum(axis=2) <= radius_sq
    np.fill_diagonal(close, False)
    edges: set[tuple[int, int]] = set()
    rows, cols = np.nonzero(np.triu(close, k=1))
    for i, j in zip(rows, cols):
        u, v = int(members[i]), int(members[j])
        if directed:
            # Orient each geometric pair; both directions are likely,
            # matching the high within-facet reciprocity of real contacts.
            if rng.random() < 0.75:
                edges.add((u, v))
            if rng.random() < 0.75:
                edges.add((v, u))
        else:
            edges.add((u, v) if u < v else (v, u))
    # Remaining budget: uniform shortcuts across the whole ego network.
    shortcut_probability = probability * (1.0 - local_fraction)
    edges |= _edges_within(members, shortcut_probability, rng, directed=directed)
    return edges


def generate_ego_collection(
    config: EgoCollectionConfig | None = None,
    *,
    seed: int | None = None,
    name: str = "synthetic-ego",
) -> EgoNetworkCollection:
    """Generate an :class:`EgoNetworkCollection` per ``config``.

    Pool members carry ids ``0 .. pool_size-1``; egos use
    ``pool_size .. pool_size+num_egos-1`` so the two never collide.
    Deterministic under ``seed``.
    """
    config = config or EgoCollectionConfig()
    config.validate()
    rng = np.random.default_rng(seed)
    pool_weights = zipf_weights(config.pool_size, config.membership_zipf_exponent)
    celebrity_weights = zipf_weights(
        config.pool_size, config.celebrity_zipf_exponent
    )
    sizes = lognormal_sizes(
        config.num_egos,
        median=config.ego_size_median,
        sigma=config.ego_size_sigma,
        minimum=max(config.circle_size_min * 2, 10),
        maximum=config.ego_size_max,
        rng=rng,
    )
    networks: list[EgoNetwork] = []
    # Private alters get fresh ids beyond the shared pool and the egos.
    next_private_id = config.pool_size + config.num_egos
    for index in range(config.num_egos):
        ego_id = config.pool_size + index
        k = int(sizes[index])
        isolated = rng.random() < config.isolated_ego_probability
        if isolated:
            private_count = k
        else:
            private_count = int(round(k * config.private_alter_fraction))
            private_count = min(private_count, k - 1)  # keep >=1 shared alter
        shared_count = k - private_count
        shared = (
            rng.choice(
                config.pool_size, size=shared_count, replace=False, p=pool_weights
            )
            if shared_count
            else np.empty(0, dtype=np.int64)
        )
        private = np.arange(
            next_private_id, next_private_id + private_count, dtype=np.int64
        )
        next_private_id += private_count
        alters = np.concatenate([shared, private])
        rng.shuffle(alters)

        # Latent attribute groups partition the circle-eligible alters;
        # circles are the largest groups (a facet must have enough members
        # to be shared).  Globally popular alters are only partially
        # eligible — close-contact facets are made of personal contacts.
        eligible_mask = np.ones(k, dtype=bool)
        shared_positions = np.flatnonzero(alters < config.pool_size)
        if shared_positions.size:
            drop = rng.random(shared_positions.size) > config.shared_circle_inclusion
            eligible_mask[shared_positions[drop]] = False
        eligible = alters[eligible_mask]
        group_count = int(
            rng.integers(config.attribute_groups_min, config.attribute_groups_max + 1)
        )
        assignments = rng.integers(0, group_count, size=len(eligible))
        groups = [eligible[assignments == g] for g in range(group_count)]
        groups = [g for g in groups if len(g) >= config.circle_size_min]
        groups.sort(key=len, reverse=True)
        circle_count = int(
            rng.integers(config.circles_per_ego_min, config.circles_per_ego_max + 1)
        )
        chosen = groups[:circle_count]

        # Base wiring among alters plus denser wiring inside circles.
        edges = _geometric_edges_within(
            alters,
            config.edge_probability,
            config.local_edge_fraction,
            rng,
            directed=config.directed,
        )
        for members in chosen:
            edges |= _edges_within(
                members, config.circle_edge_boost, rng, directed=config.directed
            )
        if config.directed and config.reciprocity > 0:
            for u, v in list(edges):
                if (v, u) not in edges and rng.random() < config.reciprocity:
                    edges.add((v, u))

        circles = [
            Circle(
                name=f"circle{i}",
                members=frozenset(int(v) for v in members),
                owner=ego_id,
            )
            for i, members in enumerate(chosen)
        ]

        # Celebrity circle: popular users, no extra internal wiring.  An
        # isolated ego stays fully private (no shared members at all).
        if not isolated and rng.random() < config.celebrity_fraction:
            size = int(
                rng.integers(config.celebrity_size_min, config.celebrity_size_max + 1)
            )
            celebrities = rng.choice(
                config.pool_size, size=size, replace=False, p=celebrity_weights
            )
            circles.append(
                Circle(
                    name="celebrities",
                    members=frozenset(int(v) for v in celebrities),
                    owner=ego_id,
                )
            )

        networks.append(
            EgoNetwork(
                ego=ego_id,
                alter_edges=sorted(edges),
                circles=circles,
                directed=config.directed,
            )
        )
    return EgoNetworkCollection(networks, name=name)
