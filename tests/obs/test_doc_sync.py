"""Doc-sync gates: the docs must list exactly what the code registers.

Two contracts:

* every metric in the live registry has a row in the
  ``docs/OBSERVABILITY.md`` catalogue table (and no stale rows linger);
* every lint rule in ``ALL_RULES`` (plus the REP000 meta diagnostic) has
  a row in the ``docs/LINTING.md`` catalogue table, and vice versa.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro import obs
from repro.devtools.lint import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_observability_doc_lists_every_registered_metric():
    from repro.obs import instruments  # noqa: F401  (import registers)

    doc = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
    catalogue = doc.split("## Metric catalogue", 1)[1].split("\n## ", 1)[0]
    documented = set(
        re.findall(r"^\| `([a-z_.]+)` \|", catalogue, flags=re.MULTILINE)
    )
    registered = set(obs.REGISTRY.names())

    missing = registered - documented
    stale = documented - registered
    assert not missing, f"metrics missing from docs/OBSERVABILITY.md: {sorted(missing)}"
    assert not stale, f"stale metric rows in docs/OBSERVABILITY.md: {sorted(stale)}"


def test_linting_doc_lists_every_lint_rule():
    doc = (REPO_ROOT / "docs" / "LINTING.md").read_text(encoding="utf-8")
    documented = set(re.findall(r"^\| (REP\d{3}) \|", doc, flags=re.MULTILINE))
    registered = {rule.id for rule in ALL_RULES} | {"REP000"}

    missing = registered - documented
    stale = documented - registered
    assert not missing, f"rules missing from docs/LINTING.md: {sorted(missing)}"
    assert not stale, f"stale rule rows in docs/LINTING.md: {sorted(stale)}"


def test_linting_doc_examples_match_rule_registry():
    """The per-rule sections carry each rule's summary verbatim."""
    doc = (REPO_ROOT / "docs" / "LINTING.md").read_text(encoding="utf-8")
    headings = set(
        re.findall(r"^### (REP\d{3}) —", doc, flags=re.MULTILINE)
    )
    registered = {rule.id for rule in ALL_RULES}
    missing = registered - headings
    assert not missing, f"rules without a detail section: {sorted(missing)}"


def test_sarif_help_uris_anchor_into_linting_doc():
    """Every SARIF helpUri must land on a real LINTING.md heading.

    ``rule_help_uri`` slugs ``### REPNNN — summary``; the anchor only
    resolves if the doc heading carries the rule's summary *verbatim*,
    so that stronger property is what this asserts.
    """
    from repro.devtools.report import LINT_DOC_URI, rule_help_uri

    doc = (REPO_ROOT / "docs" / "LINTING.md").read_text(encoding="utf-8")
    for rule_cls in ALL_RULES:
        rule = rule_cls()
        heading = f"### {rule.id} — {rule.summary}"
        assert heading in doc, (
            f"docs/LINTING.md heading for {rule.id} does not match the "
            f"rule summary verbatim; expected {heading!r}"
        )
        uri = rule_help_uri(rule)
        assert uri.startswith(f"{LINT_DOC_URI}#rep"), uri


def test_linting_doc_describes_memory_contracts():
    """REP605/REP606 lean on the decorator protocol; the doc must keep
    the 'Memory contracts' section that defines it."""
    doc = (REPO_ROOT / "docs" / "LINTING.md").read_text(encoding="utf-8")
    assert "## Memory contracts" in doc
    for token in ("@bounded_memory", "@audited_in_ram", "O(chunk + n)"):
        assert token in doc, f"memory-contracts section lost {token!r}"
