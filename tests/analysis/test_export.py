"""Figure-export tests."""

import csv

import pytest

from repro.analysis.export import export_figures


class TestExportFigures:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory, small_circles_dataset, small_community_dataset):
        output = tmp_path_factory.mktemp("figures")
        written = export_figures(
            small_circles_dataset,
            [small_community_dataset],
            output,
            seed=0,
            clustering_sample=200,
        )
        return output, written

    def test_expected_files(self, exported):
        output, written = exported
        names = {path.name for path in written}
        assert "fig2_membership.csv" in names
        assert "fig3_degree_hist.csv" in names
        assert "fig4_clustering_cdf.csv" in names
        assert "fig5_conductance.csv" in names
        assert "fig6_conductance.csv" in names
        assert all(path.exists() for path in written)

    def test_fig2_rows_match_histogram(self, exported, small_circles_dataset):
        output, __ = exported
        with open(output / "fig2_membership.csv") as handle:
            rows = list(csv.DictReader(handle))
        histogram = small_circles_dataset.ego_collection.membership_histogram()
        assert {int(r["memberships"]): int(r["vertices"]) for r in rows} == histogram

    def test_fig4_cdf_monotone(self, exported):
        output, __ = exported
        with open(output / "fig4_clustering_cdf.csv") as handle:
            rows = list(csv.DictReader(handle))
        cdf_values = [float(r["cdf"]) for r in rows]
        assert all(a <= b + 1e-12 for a, b in zip(cdf_values, cdf_values[1:]))
        assert cdf_values[-1] == pytest.approx(1.0)

    def test_fig5_has_both_series(self, exported):
        output, __ = exported
        with open(output / "fig5_average_degree.csv") as handle:
            reader = csv.DictReader(handle)
            assert set(reader.fieldnames) == {"value", "circles_cdf", "random_cdf"}
            rows = list(reader)
        assert len(rows) > 50

    def test_fig6_one_column_per_dataset(self, exported, small_circles_dataset, small_community_dataset):
        output, __ = exported
        with open(output / "fig6_ratio_cut.csv") as handle:
            reader = csv.DictReader(handle)
            assert f"{small_circles_dataset.name}_cdf" in reader.fieldnames
            assert f"{small_community_dataset.name}_cdf" in reader.fieldnames

    def test_creates_output_directory(self, tmp_path, small_circles_dataset, small_community_dataset):
        target = tmp_path / "nested" / "figures"
        written = export_figures(
            small_circles_dataset,
            [small_community_dataset],
            target,
            clustering_sample=100,
        )
        assert target.is_dir()
        assert written
