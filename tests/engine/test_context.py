"""AnalysisContext freeze-once contract and cached graph-wide quantities."""

import numpy as np
import pytest

from repro.engine import AnalysisContext
from repro.exceptions import GraphError, NodeNotFound
from repro.graph.digraph import DiGraph
from repro.graph.ugraph import Graph


class TestFreezing:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            AnalysisContext(Graph())

    def test_context_adopts_existing_context(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        again = AnalysisContext(context)
        assert again.csr is context.csr
        assert again.graph is context.graph

    def test_ensure_is_identity_on_contexts(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        assert AnalysisContext.ensure(context) is context

    def test_ensure_freezes_raw_graph(self, triangle_graph):
        context = AnalysisContext.ensure(triangle_graph)
        assert isinstance(context, AnalysisContext)
        assert context.num_vertices == triangle_graph.number_of_nodes()

    def test_freeze_once_ignores_later_mutation(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        n, m = context.num_vertices, context.num_edges
        triangle_graph.add_edge(1, 99)
        assert context.num_vertices == n
        assert context.num_edges == m
        assert 99 not in context

    def test_directed_has_three_orientations(self, small_digraph):
        context = AnalysisContext(small_digraph)
        assert context.is_directed
        assert context.csr.orientation == "union"
        assert context.csr_out.orientation == "out"
        assert context.csr_in.orientation == "in"

    def test_undirected_has_union_only(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        assert not context.is_directed
        assert context.csr_out is None
        assert context.csr_in is None


class TestLabelBoundary:
    def test_contains(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        assert 1 in context
        assert 99 not in context

    def test_vertex_ids_round_trip(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        labels = list(triangle_graph.nodes)
        ids = context.vertex_ids(labels)
        assert context.labels(ids) == labels

    def test_unknown_label_raises(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        with pytest.raises(NodeNotFound):
            context.vertex_ids([1, "nope"])


class TestCachedQuantities:
    def test_undirected_degree_array(self, triangle_graph):
        context = AnalysisContext(triangle_graph)
        degrees = dict(zip(context.nodes, context.degree_array))
        assert degrees == {
            node: triangle_graph.degree[node] for node in triangle_graph
        }

    def test_directed_degree_convention(self, small_digraph):
        # Paper's d(v) = d_in + d_out: a reciprocal pair contributes 2,
        # so this is NOT the union-skeleton degree.
        context = AnalysisContext(small_digraph)
        degrees = dict(zip(context.nodes, context.degree_array))
        assert degrees == {"a": 2, "b": 3, "c": 2, "d": 1}
        union = dict(zip(context.nodes, context.csr.degree_array()))
        assert union["a"] == 1  # a<->b collapses in the skeleton

    def test_out_in_degree_arrays(self, small_digraph):
        context = AnalysisContext(small_digraph)
        out = dict(zip(context.nodes, context.out_degree_array))
        inn = dict(zip(context.nodes, context.in_degree_array))
        assert out == {"a": 1, "b": 2, "c": 1, "d": 0}
        assert inn == {"a": 1, "b": 1, "c": 1, "d": 1}

    def test_median_degree_cached(self, two_cliques_graph):
        context = AnalysisContext(two_cliques_graph)
        assert context.median_degree == float(
            np.median(
                [two_cliques_graph.degree[v] for v in two_cliques_graph]
            )
        )
        assert context.median_degree is not None  # second read hits cache

    def test_label_rank_is_stable_sorted_order(self):
        graph = Graph()
        for label in ("zeta", "alpha", "mid"):
            graph.add_node(label)
        graph.add_edge("zeta", "alpha")
        graph.add_edge("alpha", "mid")
        context = AnalysisContext(graph)
        rank = dict(zip(context.nodes, context.label_rank))
        assert rank == {"alpha": 0, "mid": 1, "zeta": 2}

    def test_label_rank_mixed_types_falls_back_to_repr(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node("a")
        graph.add_edge(1, "a")
        context = AnalysisContext(graph)
        by_rank = sorted(context.nodes, key=lambda v: context.label_rank[
            context.index_of[v]
        ])
        assert by_rank == sorted(context.nodes, key=repr)
