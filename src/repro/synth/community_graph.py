"""Planted-community graph generator (LiveJournal/Orkut stand-in).

Classical community corpora (com-LiveJournal, com-Orkut) are sparse global
graphs with member-joined groups that are internally dense and externally
quiet.  The generator plants overlapping communities (AGM-style: a vertex
may join several) on top of a Chung–Lu background graph with log-normal
expected degrees:

* per-community internal wiring targets a sampled average internal degree,
  so the conductance distribution is *broad* (the paper's Fig. 6c shows
  LiveJournal almost uniform on [0, 1]);
* the background density knob separates the LiveJournal-like (sparse,
  well-separated) from the Orkut-like (dense, higher-conductance) regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.groups import Community, GroupSet
from repro.graph.ugraph import Graph
from repro.synth.heavy_tail import lognormal_sizes

__all__ = ["CommunityGraphConfig", "generate_community_graph"]


@dataclass(frozen=True)
class CommunityGraphConfig:
    """Parameters of the planted-community graph."""

    #: number of vertices in the graph
    num_nodes: int = 8000
    #: number of planted communities
    num_communities: int = 300
    #: median community size (log-normal)
    community_size_median: float = 25.0
    #: log-space sigma of community sizes
    community_size_sigma: float = 0.7
    #: community size bounds
    community_size_min: int = 8
    community_size_max: int = 400
    #: median of the per-community target average internal degree
    internal_degree_median: float = 8.0
    #: log-space sigma of the internal-degree target (spread => broad
    #: conductance distribution)
    internal_degree_sigma: float = 0.5
    #: mean background (non-community) degree per vertex
    background_degree: float = 6.0
    #: log-space sigma of Chung-Lu background weight per vertex
    background_weight_sigma: float = 0.8
    #: Zipf-free popularity: probability mass concentrating membership
    #: (0 = uniform membership; higher favours a popular core)
    membership_bias: float = 0.3

    def validate(self) -> None:
        """Raise :class:`ValueError` on inconsistent parameters."""
        if self.num_nodes < self.community_size_max:
            raise ValueError("num_nodes must be >= community_size_max")
        if self.num_communities < 1:
            raise ValueError("num_communities must be >= 1")
        if self.community_size_min < 3:
            raise ValueError("community_size_min must be >= 3")
        if self.background_degree < 0:
            raise ValueError("background_degree must be non-negative")
        if self.membership_bias < 0:
            raise ValueError("membership_bias must be non-negative")


def _community_edges(
    members: np.ndarray,
    target_degree: float,
    rng: np.random.Generator,
) -> set[tuple[int, int]]:
    """Random undirected edges among ``members`` hitting an average degree."""
    size = len(members)
    if size < 2:
        return set()
    probability = min(1.0, target_degree / max(size - 1, 1))
    total_pairs = size * (size - 1) // 2
    count = rng.binomial(total_pairs, probability)
    if count == 0:
        return set()
    flat = rng.choice(total_pairs, size=count, replace=False)
    # Unrank the pair index into (i, j), i < j.
    i = (np.floor((2 * size - 1 - np.sqrt((2 * size - 1) ** 2 - 8 * flat)) / 2)).astype(
        np.int64
    )
    offset = flat - i * (2 * size - i - 1) // 2
    j = i + 1 + offset
    edges: set[tuple[int, int]] = set()
    for a, b in zip(i, j):
        u, v = int(members[a]), int(members[b])
        if u > v:
            u, v = v, u
        if u != v:
            edges.add((u, v))
    return edges


def _chung_lu_edges(
    num_nodes: int,
    mean_degree: float,
    weight_sigma: float,
    rng: np.random.Generator,
) -> set[tuple[int, int]]:
    """Background edges via Chung–Lu sampling with log-normal weights."""
    if mean_degree <= 0:
        return set()
    target_edges = int(num_nodes * mean_degree / 2)
    weights = rng.lognormal(mean=0.0, sigma=weight_sigma, size=num_nodes)
    probabilities = weights / weights.sum()
    edges: set[tuple[int, int]] = set()
    batch = max(target_edges // 4, 1024)
    attempts = 0
    while len(edges) < target_edges and attempts < 50:
        attempts += 1
        us = rng.choice(num_nodes, size=batch, p=probabilities)
        vs = rng.choice(num_nodes, size=batch, p=probabilities)
        for u, v in zip(us, vs):
            if len(edges) >= target_edges:
                break
            u, v = int(u), int(v)
            if u == v:
                continue
            if u > v:
                u, v = v, u
            edges.add((u, v))
    return edges


def generate_community_graph(
    config: CommunityGraphConfig | None = None,
    *,
    seed: int | None = None,
    name: str = "synthetic-communities",
) -> tuple[Graph, GroupSet]:
    """Generate the planted-community graph and its ground-truth groups.

    Vertices are ``0 .. num_nodes-1``.  Deterministic under ``seed``.
    Isolated vertices are kept (real community corpora have them once
    restricted to a sample), so callers wanting the giant component should
    filter explicitly.
    """
    config = config or CommunityGraphConfig()
    config.validate()
    rng = np.random.default_rng(seed)

    sizes = lognormal_sizes(
        config.num_communities,
        median=config.community_size_median,
        sigma=config.community_size_sigma,
        minimum=config.community_size_min,
        maximum=config.community_size_max,
        rng=rng,
    )
    # Membership popularity: mixture of uniform and a biased core.
    popularity = rng.lognormal(
        mean=0.0, sigma=config.membership_bias, size=config.num_nodes
    )
    popularity /= popularity.sum()

    internal_targets = rng.lognormal(
        mean=np.log(config.internal_degree_median),
        sigma=config.internal_degree_sigma,
        size=config.num_communities,
    )

    graph = Graph(name=name)
    graph.add_nodes_from(range(config.num_nodes))
    groups = GroupSet(name=name)
    for index in range(config.num_communities):
        members = rng.choice(
            config.num_nodes, size=int(sizes[index]), replace=False, p=popularity
        )
        edges = _community_edges(members, float(internal_targets[index]), rng)
        graph.add_edges_from(edges)
        groups.add(
            Community(
                name=f"community{index}",
                members=frozenset(int(v) for v in members),
            )
        )
    graph.add_edges_from(
        _chung_lu_edges(
            config.num_nodes,
            config.background_degree,
            config.background_weight_sigma,
            rng,
        )
    )
    return graph, groups
